package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/task"
)

// HarmonicConfig describes a harmonic (single-chain) or K-chain task set
// request.
type HarmonicConfig struct {
	// TargetU is the total utilization to hit.
	TargetU float64
	// UMin and UMax bound each task's individual utilization.
	UMin, UMax float64
	// Chains is the number of harmonic chains (1 = fully harmonic set).
	Chains int
	// BasePeriods optionally fixes the base period of each chain; when nil,
	// pairwise-coprime defaults are used so the chain count is exact.
	BasePeriods []task.Time
	// Factors is the menu of multipliers used to extend a chain; defaults
	// to {2, 3, 4} (each period divides every larger one in its chain).
	Factors []int
	// MaxLevels bounds how many times a chain's period is multiplied
	// (keeps hyperperiods simulable); defaults to 4.
	MaxLevels int
	// MaxTasks guards runaway generation; defaults to 10000.
	MaxTasks int
}

// defaultChainBases are pairwise coprime so that periods from different
// chains never divide each other, making the generated chain count exact
// (bounds.HarmonicChainsMin finds exactly Chains chains).
var defaultChainBases = []task.Time{64, 81, 125, 49, 121, 169, 289, 361}

// HarmonicSet generates a task set whose periods form exactly cfg.Chains
// harmonic chains: chain k uses periods base_k · Π factors. Utilizations
// are drawn as in TaskSet and tasks are dealt to chains round-robin.
func HarmonicSet(r *rand.Rand, cfg HarmonicConfig) (task.Set, error) {
	return HarmonicSetInto(r, cfg, nil)
}

// HarmonicSetInto is HarmonicSet drawing into caller-owned scratch (chain
// ladders and the returned set reuse sc's capacity; see TaskSetInto for
// the aliasing contract). Nil sc reproduces HarmonicSet exactly.
func HarmonicSetInto(r *rand.Rand, cfg HarmonicConfig, sc *Scratch) (task.Set, error) {
	if cfg.Chains < 1 {
		return nil, fmt.Errorf("gen: chain count %d < 1", cfg.Chains)
	}
	if cfg.TargetU <= 0 {
		return nil, fmt.Errorf("gen: non-positive target utilization %g", cfg.TargetU)
	}
	if cfg.UMin <= 0 || cfg.UMax < cfg.UMin || cfg.UMax > 1 {
		return nil, fmt.Errorf("gen: invalid per-task utilization range [%g,%g]", cfg.UMin, cfg.UMax)
	}
	bases := cfg.BasePeriods
	if bases == nil {
		if cfg.Chains > len(defaultChainBases) {
			return nil, fmt.Errorf("gen: at most %d default chain bases; supply BasePeriods for %d chains", len(defaultChainBases), cfg.Chains)
		}
		bases = defaultChainBases[:cfg.Chains]
	}
	if len(bases) != cfg.Chains {
		return nil, fmt.Errorf("gen: %d base periods for %d chains", len(bases), cfg.Chains)
	}
	factors := cfg.Factors
	if len(factors) == 0 {
		factors = []int{2, 3, 4}
	}
	maxLevels := cfg.MaxLevels
	if maxLevels == 0 {
		maxLevels = 4
	}
	maxTasks := cfg.MaxTasks
	if maxTasks == 0 {
		maxTasks = 10000
	}

	// Pre-build each chain's period ladder: base, base·f1, base·f1·f2, ...
	ladders := sc.laddersBuf(cfg.Chains)
	for k, b := range bases {
		ladder := append(ladders[k], b)
		p := b
		for l := 0; l < maxLevels; l++ {
			p *= task.Time(factors[r.Intn(len(factors))])
			ladder = append(ladder, p)
		}
		ladders[k] = ladder
	}

	ts := sc.setBuf(0)
	total := 0.0
	i := 0
	for total < cfg.TargetU {
		if len(ts) >= maxTasks {
			return nil, fmt.Errorf("gen: target %g needs more than %d tasks", cfg.TargetU, maxTasks)
		}
		u := cfg.UMin + r.Float64()*(cfg.UMax-cfg.UMin)
		if total+u >= cfg.TargetU {
			u = cfg.TargetU - total
			if u < cfg.UMin {
				u = cfg.UMin
			}
		}
		ladder := ladders[i%cfg.Chains]
		t := ladder[r.Intn(len(ladder))]
		c := task.Time(float64(t)*u + 0.5)
		if c < 1 {
			c = 1
		}
		if c > t {
			c = t
		}
		ts = append(ts, task.Task{Name: harmonicName(i), C: c, T: t})
		total += float64(c) / float64(t)
		i++
	}
	sc.saveSet(ts)
	ts.SortRM()
	return ts, nil
}

// MixedConfig generates task sets with a controlled share of heavy tasks
// (utilization above the heavy threshold) — the knob RM-TS's
// pre-assignment phase exists for.
type MixedConfig struct {
	// TargetU is the total utilization to hit.
	TargetU float64
	// HeavyShare is the fraction of the total utilization carried by heavy
	// tasks, in [0, 1].
	HeavyShare float64
	// HeavyMin and HeavyMax bound heavy-task utilizations (e.g. 0.5–0.9).
	HeavyMin, HeavyMax float64
	// LightMin and LightMax bound light-task utilizations (e.g. 0.05–0.35).
	LightMin, LightMax float64
	// Periods draws the periods; nil defaults to log-uniform [100, 10000].
	Periods PeriodGen
}

// MixedSet generates a heavy/light mix: heavy tasks are added until they
// carry HeavyShare·TargetU, light tasks fill the rest.
func MixedSet(r *rand.Rand, cfg MixedConfig) (task.Set, error) {
	return MixedSetInto(r, cfg, nil)
}

// MixedSetInto is MixedSet drawing into caller-owned scratch (see
// TaskSetInto for the aliasing contract). Nil sc reproduces MixedSet
// exactly.
func MixedSetInto(r *rand.Rand, cfg MixedConfig, sc *Scratch) (task.Set, error) {
	if cfg.HeavyShare < 0 || cfg.HeavyShare > 1 {
		return nil, fmt.Errorf("gen: heavy share %g out of [0,1]", cfg.HeavyShare)
	}
	pg := cfg.Periods
	if pg == nil {
		pg = LogUniformPeriods{Min: 100, Max: 10000}
	}
	us := sc.usBuf()
	heavyTarget := cfg.TargetU * cfg.HeavyShare
	heavy := 0.0
	for heavy < heavyTarget && cfg.HeavyShare > 0 {
		u := cfg.HeavyMin + r.Float64()*(cfg.HeavyMax-cfg.HeavyMin)
		if heavy+u > heavyTarget && heavy > 0 {
			break
		}
		us = append(us, u)
		heavy += u
	}
	light := cfg.TargetU - heavy
	sum := 0.0
	for sum < light {
		u := cfg.LightMin + r.Float64()*(cfg.LightMax-cfg.LightMin)
		if sum+u >= light {
			u = light - sum
			if u < cfg.LightMin {
				u = cfg.LightMin
			}
		}
		us = append(us, u)
		sum += u
	}
	sc.saveUs(us)
	return MaterializeInto(r, us, pg, sc)
}
