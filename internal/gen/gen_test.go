package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/task"
)

func TestTaskSetHitsTarget(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		target := 1.0 + r.Float64()*6
		ts, err := TaskSet(r, Config{TargetU: target, UMin: 0.05, UMax: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		got := ts.TotalUtilization()
		// Integer rounding perturbs each task by at most 1/T ≤ 1/100.
		if math.Abs(got-target) > 0.01*float64(len(ts))+0.06 {
			t.Errorf("trial %d: total %.4f for target %.4f (%d tasks)", trial, got, target, len(ts))
		}
		if err := ts.Validate(); err != nil {
			t.Fatal(err)
		}
		if !ts.IsSortedRM() {
			t.Error("generator must return RM-sorted sets")
		}
	}
}

func TestTaskSetRespectsUtilizationRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ts, err := TaskSet(r, Config{TargetU: 4, UMin: 0.1, UMax: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range ts {
		u := tk.Utilization()
		// Rounding can push slightly past the nominal range.
		if u < 0.1-0.02 || u > 0.3+0.02 {
			t.Errorf("task %v has utilization %.4f outside [0.1, 0.3]", tk, u)
		}
	}
}

func TestTaskSetRejectsBadConfig(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	bad := []Config{
		{TargetU: 0, UMin: 0.1, UMax: 0.3},
		{TargetU: -1, UMin: 0.1, UMax: 0.3},
		{TargetU: 1, UMin: 0, UMax: 0.3},
		{TargetU: 1, UMin: 0.4, UMax: 0.3},
		{TargetU: 1, UMin: 0.1, UMax: 1.5},
		{TargetU: 100, UMin: 0.001, UMax: 0.002, MaxTasks: 10},
	}
	for i, c := range bad {
		if _, err := TaskSet(r, c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestPeriodGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	lg := LogUniformPeriods{Min: 100, Max: 10000}
	for i := 0; i < 2000; i++ {
		p := lg.Period(r)
		if p < 100 || p > 10000 {
			t.Fatalf("log-uniform period %d out of range", p)
		}
	}
	ug := UniformPeriods{Min: 5, Max: 7}
	seen := map[task.Time]bool{}
	for i := 0; i < 200; i++ {
		p := ug.Period(r)
		if p < 5 || p > 7 {
			t.Fatalf("uniform period %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Errorf("uniform generator covered %d of 3 values", len(seen))
	}
	cg := ChoicePeriods{Values: []task.Time{10, 20}}
	for i := 0; i < 100; i++ {
		p := cg.Period(r)
		if p != 10 && p != 20 {
			t.Fatalf("choice period %d not in menu", p)
		}
	}
}

func TestLogUniformSpreadsAcrossDecades(t *testing.T) {
	// Roughly half the draws from [100, 10000] should land below 1000.
	r := rand.New(rand.NewSource(5))
	lg := LogUniformPeriods{Min: 100, Max: 10000}
	below := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if lg.Period(r) < 1000 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("fraction below 1000 = %.3f, want ≈ 0.5 (log-uniform)", frac)
	}
}

func TestUUniFast(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(10)
		target := r.Float64() * float64(n)
		us := UUniFast(r, n, target)
		sum := 0.0
		for _, u := range us {
			sum += u
		}
		if math.Abs(sum-target) > 1e-9 {
			t.Fatalf("UUniFast sum %.6f ≠ target %.6f", sum, target)
		}
	}
}

func TestUUniFastDiscard(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	us, err := UUniFastDiscard(r, 20, 6.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, u := range us {
		if u <= 0 || u > 0.8 {
			t.Fatalf("utilization %g out of (0, 0.8]", u)
		}
		sum += u
	}
	if math.Abs(sum-6.0) > 1e-9 {
		t.Fatalf("sum %.6f ≠ 6.0", sum)
	}
	if _, err := UUniFastDiscard(r, 4, 5.0, 1.0); err == nil {
		t.Error("infeasible target accepted")
	}
}

func TestHarmonicSetSingleChain(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		ts, err := HarmonicSet(r, HarmonicConfig{TargetU: 2.5, UMin: 0.05, UMax: 0.4, Chains: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !ts.IsHarmonic() {
			t.Fatalf("trial %d: single-chain request produced non-harmonic set %v", trial, ts)
		}
		if err := ts.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHarmonicSetExactChainCount(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, k := range []int{1, 2, 3, 4} {
		for trial := 0; trial < 10; trial++ {
			ts, err := HarmonicSet(r, HarmonicConfig{TargetU: float64(k) * 1.2, UMin: 0.05, UMax: 0.4, Chains: k})
			if err != nil {
				t.Fatal(err)
			}
			got := bounds.HarmonicChainsMin(bounds.Periods(ts))
			if got != k {
				t.Fatalf("requested %d chains, got %d: periods %v", k, got, bounds.Periods(ts))
			}
		}
	}
}

func TestHarmonicSetUtilization(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	ts, err := HarmonicSet(r, HarmonicConfig{TargetU: 3.0, UMin: 0.1, UMax: 0.4, Chains: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.TotalUtilization(); math.Abs(got-3.0) > 0.15 {
		t.Errorf("total utilization %.4f far from target 3.0", got)
	}
}

func TestHarmonicSetRejectsBadConfig(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	bad := []HarmonicConfig{
		{TargetU: 1, UMin: 0.1, UMax: 0.4, Chains: 0},
		{TargetU: 0, UMin: 0.1, UMax: 0.4, Chains: 1},
		{TargetU: 1, UMin: 0, UMax: 0.4, Chains: 1},
		{TargetU: 1, UMin: 0.1, UMax: 0.4, Chains: 99},
		{TargetU: 1, UMin: 0.1, UMax: 0.4, Chains: 2, BasePeriods: []task.Time{64}},
	}
	for i, c := range bad {
		if _, err := HarmonicSet(r, c); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestMixedSetHeavyShare(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ts, err := MixedSet(r, MixedConfig{
		TargetU:    4.0,
		HeavyShare: 0.5,
		HeavyMin:   0.5, HeavyMax: 0.7,
		LightMin: 0.05, LightMax: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	heavyU := 0.0
	for _, tk := range ts {
		if u := tk.Utilization(); u >= 0.45 {
			heavyU += u
		}
	}
	if heavyU < 1.2 || heavyU > 2.8 {
		t.Errorf("heavy tasks carry %.3f of 4.0, want ≈ 2.0", heavyU)
	}
	if math.Abs(ts.TotalUtilization()-4.0) > 0.2 {
		t.Errorf("total %.4f", ts.TotalUtilization())
	}
}

func TestMixedSetZeroHeavyShare(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ts, err := MixedSet(r, MixedConfig{
		TargetU:    2.0,
		HeavyShare: 0,
		LightMin:   0.05, LightMax: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range ts {
		if tk.Utilization() > 0.33 {
			t.Errorf("heavy task %v in zero-heavy-share set", tk)
		}
	}
}

func TestMixedSetRejectsBadShare(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for _, share := range []float64{-0.1, 1.1} {
		if _, err := MixedSet(r, MixedConfig{TargetU: 1, HeavyShare: share, LightMin: 0.1, LightMax: 0.2}); err == nil {
			t.Errorf("share %g accepted", share)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, err := TaskSet(rand.New(rand.NewSource(42)), Config{TargetU: 3, UMin: 0.1, UMax: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TaskSet(rand.New(rand.NewSource(42)), Config{TargetU: 3, UMin: 0.1, UMax: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("task %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMaterializeValidation(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	if _, err := Materialize(r, []float64{0.5, 1.5}, UniformPeriods{Min: 10, Max: 20}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := Materialize(r, []float64{0.5, 0}, UniformPeriods{Min: 10, Max: 20}); err == nil {
		t.Error("zero utilization accepted")
	}
	ts, err := Materialize(r, []float64{0.001}, UniformPeriods{Min: 10, Max: 20})
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].C != 1 {
		t.Errorf("tiny utilization should clamp C to 1, got %d", ts[0].C)
	}
}

func TestConstrain(t *testing.T) {
	r := rand.New(rand.NewSource(200))
	base, err := TaskSet(r, Config{TargetU: 2, UMin: 0.1, UMax: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Constrain(r, base, 0.5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(base) {
		t.Fatal("length changed")
	}
	for i, tk := range ts {
		if err := tk.Validate(); err != nil {
			t.Fatalf("task %d invalid after Constrain: %v", i, err)
		}
		d := tk.Deadline()
		if d < tk.C || d > tk.T {
			t.Fatalf("task %d deadline %d out of [C,T]", i, d)
		}
		// Roughly within the requested fraction band (C floor aside).
		if f := float64(d) / float64(tk.T); f > 0.8+0.02 && d != tk.C {
			t.Fatalf("task %d deadline fraction %.3f above band", i, f)
		}
		if base[i].C != tk.C || base[i].T != tk.T {
			t.Fatalf("task %d C/T changed", i)
		}
		if base[i].D != 0 {
			t.Fatal("input mutated")
		}
	}
}

func TestConstrainRejectsBadRange(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	ts := task.Set{{C: 1, T: 10}}
	for _, rng := range [][2]float64{{0, 0.5}, {0.6, 0.5}, {0.5, 1.5}} {
		if _, err := Constrain(r, ts, rng[0], rng[1]); err == nil {
			t.Errorf("range %v accepted", rng)
		}
	}
}

func TestConstrainClampsToC(t *testing.T) {
	// A task with C near T: tiny fractions must clamp D to C.
	r := rand.New(rand.NewSource(202))
	ts := task.Set{{Name: "x", C: 9, T: 10}}
	out, err := Constrain(r, ts, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].D != 9 {
		t.Errorf("D = %d, want clamped to C=9", out[0].D)
	}
}
