package gen

import (
	"math/rand"
	"testing"
)

// Alloc guard for scratch-backed generation: a warm Scratch must absorb all
// working storage of TaskSetInto (utilization draws, the set buffer, task
// names). Run with `go test -run AllocGuard ./...`.
func TestAllocGuardTaskSetInto(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	cfg := Config{TargetU: 3.2, UMin: 0.05, UMax: 0.5}
	sc := &Scratch{}
	if _, err := TaskSetInto(r, cfg, sc); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := TaskSetInto(r, cfg, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("TaskSetInto with warm scratch: %v allocs/run, want 0", allocs)
	}
}
