// Package gen generates synthetic workloads for the evaluation experiments:
// random task sets with controlled total utilization, per-task utilization
// ranges, period distributions, harmonic structure (single chains or K
// chains) and heavy-task shares. Every generator is driven by an explicit
// *rand.Rand so experiments are seeded and reproducible.
//
// The methodology mirrors the evaluation style of the paper's research
// line: per-task utilizations drawn uniformly from a range, tasks added
// until the target normalized utilization M·U_M is reached (with the last
// task trimmed to land exactly on target), periods drawn log-uniformly from
// [Tmin, Tmax] (or from harmonic grids), and execution times rounded to the
// integer tick domain.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/task"
)

// PeriodGen draws task periods.
type PeriodGen interface {
	// Period draws one period.
	Period(r *rand.Rand) task.Time
}

// LogUniformPeriods draws periods log-uniformly from [Min, Max] — the
// standard choice that spreads periods evenly across orders of magnitude.
type LogUniformPeriods struct {
	Min, Max task.Time
}

// Period implements PeriodGen.
func (g LogUniformPeriods) Period(r *rand.Rand) task.Time {
	lo, hi := float64(g.Min), float64(g.Max)
	if lo <= 0 || hi < lo {
		panic(fmt.Sprintf("gen: invalid log-uniform period range [%d,%d]", g.Min, g.Max))
	}
	v := math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
	p := task.Time(math.Round(v))
	if p < g.Min {
		p = g.Min
	}
	if p > g.Max {
		p = g.Max
	}
	return p
}

// UniformPeriods draws periods uniformly from [Min, Max].
type UniformPeriods struct {
	Min, Max task.Time
}

// Period implements PeriodGen.
func (g UniformPeriods) Period(r *rand.Rand) task.Time {
	if g.Min <= 0 || g.Max < g.Min {
		panic(fmt.Sprintf("gen: invalid uniform period range [%d,%d]", g.Min, g.Max))
	}
	return g.Min + task.Time(r.Int63n(int64(g.Max-g.Min+1)))
}

// ChoicePeriods draws periods from a fixed menu — handy to keep
// hyperperiods small for simulation experiments.
type ChoicePeriods struct {
	Values []task.Time
}

// Period implements PeriodGen.
func (g ChoicePeriods) Period(r *rand.Rand) task.Time {
	if len(g.Values) == 0 {
		panic("gen: empty period menu")
	}
	return g.Values[r.Intn(len(g.Values))]
}

// Config describes a random task-set request.
type Config struct {
	// TargetU is the total utilization to hit (e.g. M·U_M). Must be > 0.
	TargetU float64
	// UMin and UMax bound each task's individual utilization. The final
	// task is trimmed to land on TargetU, but never below UMin.
	UMin, UMax float64
	// Periods draws the periods. Nil defaults to log-uniform [100, 10000].
	Periods PeriodGen
	// MaxTasks aborts generation if the target would need more tasks than
	// this (guards against UMin ≈ 0). Zero means 10000.
	MaxTasks int
}

// defaultPeriods is boxed once at init so the nil-Periods fast path does not
// allocate an interface value per generated set.
var defaultPeriods PeriodGen = LogUniformPeriods{Min: 100, Max: 10000}

func (c Config) periods() PeriodGen {
	if c.Periods == nil {
		return defaultPeriods
	}
	return c.Periods
}

// TaskSet draws utilizations uniformly from [UMin, UMax], adding tasks
// until the running total would pass TargetU; the final task is trimmed to
// land on the target (and redrawn while the trim would fall below UMin with
// remaining capacity — the "add and trim" variant of uniform-utilization
// generation). Execution times are C = max(1, round(U·T)); the realized
// total utilization therefore differs from TargetU only by integer
// rounding.
func TaskSet(r *rand.Rand, c Config) (task.Set, error) {
	return TaskSetInto(r, c, nil)
}

// TaskSetInto is TaskSet drawing into caller-owned scratch buffers: the
// utilization vector and the returned set reuse sc's capacity, so a warm
// steady state allocates nothing. The returned set aliases sc and is valid
// only until the next generate call on the same Scratch (see Scratch). A
// nil sc reproduces TaskSet exactly; the RNG draw sequence is identical in
// both modes.
func TaskSetInto(r *rand.Rand, c Config, sc *Scratch) (task.Set, error) {
	if c.TargetU <= 0 {
		return nil, fmt.Errorf("gen: non-positive target utilization %g", c.TargetU)
	}
	if c.UMin <= 0 || c.UMax < c.UMin || c.UMax > 1 {
		return nil, fmt.Errorf("gen: invalid per-task utilization range [%g,%g]", c.UMin, c.UMax)
	}
	maxTasks := c.MaxTasks
	if maxTasks == 0 {
		maxTasks = 10000
	}
	pg := c.periods()
	us := sc.usBuf()
	total := 0.0
	for total < c.TargetU {
		if len(us) >= maxTasks {
			return nil, fmt.Errorf("gen: target %g needs more than %d tasks", c.TargetU, maxTasks)
		}
		u := c.UMin + r.Float64()*(c.UMax-c.UMin)
		if total+u >= c.TargetU {
			u = c.TargetU - total
			if u < c.UMin {
				// The remainder is too small for a valid task: fold it into
				// the previous task if that stays within UMax, else retry.
				if len(us) > 0 && us[len(us)-1]+u <= c.UMax {
					us[len(us)-1] += u
					total += u
					continue
				}
				// Shrink the previous task to make room for a UMin-sized one.
				if len(us) > 0 && us[len(us)-1]-(c.UMin-u) >= c.UMin {
					us[len(us)-1] -= c.UMin - u
					u = c.UMin
				} else {
					u = c.UMin // slight overshoot; trimmed by rounding below
				}
			}
		}
		us = append(us, u)
		total += u
	}
	sc.saveUs(us)
	return MaterializeInto(r, us, pg, sc)
}

// Materialize converts a utilization vector into an integer task set using
// the period generator: T drawn per task, C = clamp(round(U·T), 1, T).
func Materialize(r *rand.Rand, us []float64, pg PeriodGen) (task.Set, error) {
	return MaterializeInto(r, us, pg, nil)
}

// MaterializeInto is Materialize drawing into sc's set buffer (see
// TaskSetInto for the aliasing contract; nil sc allocates fresh).
func MaterializeInto(r *rand.Rand, us []float64, pg PeriodGen, sc *Scratch) (task.Set, error) {
	ts := sc.setBuf(len(us))
	for i, u := range us {
		if u <= 0 || u > 1 {
			return nil, fmt.Errorf("gen: utilization %g out of (0,1] at index %d", u, i)
		}
		t := pg.Period(r)
		c := task.Time(math.Round(u * float64(t)))
		if c < 1 {
			c = 1
		}
		if c > t {
			c = t
		}
		ts = append(ts, task.Task{Name: uniformName(i), C: c, T: t})
	}
	sc.saveSet(ts)
	ts.SortRM()
	return ts, nil
}

// Constrain tightens each task's deadline to a uniformly drawn fraction of
// its period, D = max(C, round(T·f)) with f ∈ [fMin, fMax] ⊆ (0, 1] — the
// standard way to derive constrained-deadline workloads from implicit ones.
// fMax = 1 may still leave some tasks implicit. The input is not modified.
func Constrain(r *rand.Rand, ts task.Set, fMin, fMax float64) (task.Set, error) {
	return ConstrainInto(r, ts, fMin, fMax, nil)
}

// ConstrainInto is Constrain copying into a scratch-owned output buffer
// (distinct from the set buffer, so ts may itself be a scratch-generated
// set). Nil sc allocates fresh; the input is never modified either way.
func ConstrainInto(r *rand.Rand, ts task.Set, fMin, fMax float64, sc *Scratch) (task.Set, error) {
	if fMin <= 0 || fMax < fMin || fMax > 1 {
		return nil, fmt.Errorf("gen: invalid deadline fraction range [%g,%g]", fMin, fMax)
	}
	var out task.Set
	if sc == nil {
		out = ts.Clone()
	} else {
		out = append(sc.out[:0], ts...)
		sc.out = out
	}
	for i := range out {
		f := fMin + r.Float64()*(fMax-fMin)
		d := task.Time(math.Round(f * float64(out[i].T)))
		if d < out[i].C {
			d = out[i].C
		}
		if d > out[i].T {
			d = out[i].T
		}
		out[i].D = d
	}
	return out, nil
}

// UUniFast generates n utilizations summing to targetU using the UUniFast
// algorithm of Bini & Buttazzo — uniform over the simplex. targetU must be
// at most n (individual utilizations can exceed 1 otherwise).
func UUniFast(r *rand.Rand, n int, targetU float64) []float64 {
	us := make([]float64, n)
	sum := targetU
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-1-i))
		us[i] = sum - next
		sum = next
	}
	us[n-1] = sum
	return us
}

// UUniFastDiscard repeats UUniFast until every utilization lies in
// (0, maxU], the standard "discard" variant for multiprocessor targets
// (targetU may exceed 1). It gives up after 10000 attempts.
func UUniFastDiscard(r *rand.Rand, n int, targetU, maxU float64) ([]float64, error) {
	if targetU > float64(n)*maxU {
		return nil, fmt.Errorf("gen: target %g infeasible for %d tasks capped at %g", targetU, n, maxU)
	}
	for attempt := 0; attempt < 10000; attempt++ {
		us := UUniFast(r, n, targetU)
		ok := true
		for _, u := range us {
			if u <= 0 || u > maxU {
				ok = false
				break
			}
		}
		if ok {
			return us, nil
		}
	}
	return nil, fmt.Errorf("gen: UUniFast-discard failed for n=%d target=%g maxU=%g", n, targetU, maxU)
}
