package gen

import (
	"fmt"

	"repro/internal/task"
)

// Scratch holds reusable generator buffers so the acceptance-sweep hot
// path can draw task sets without allocating: the utilization vector, the
// materialized set, the harmonic period ladders and the constrained-
// deadline copy all grow once to the working-set size and are then
// recycled. The zero value is ready to use.
//
// Ownership rule: a task.Set returned by one of the *Into generators
// aliases the scratch and stays valid only until the next generate call on
// the same Scratch. Callers that need to retain a set must Clone it. A
// Scratch is not safe for concurrent use; the experiment harness keeps one
// per worker.
type Scratch struct {
	us      []float64
	set     task.Set
	out     task.Set // ConstrainInto output (its input may alias set)
	ladders [][]task.Time
}

// usBuf returns the utilization accumulation buffer (nil Scratch → fresh).
func (sc *Scratch) usBuf() []float64 {
	if sc == nil {
		return nil
	}
	return sc.us[:0]
}

// saveUs records the grown utilization buffer for reuse.
func (sc *Scratch) saveUs(us []float64) {
	if sc != nil {
		sc.us = us
	}
}

// setBuf returns the task-set accumulation buffer (nil Scratch → fresh
// with the given capacity hint).
func (sc *Scratch) setBuf(capHint int) task.Set {
	if sc == nil {
		return make(task.Set, 0, capHint)
	}
	return sc.set[:0]
}

// saveSet records the grown set buffer for reuse.
func (sc *Scratch) saveSet(ts task.Set) {
	if sc != nil {
		sc.set = ts
	}
}

// laddersBuf returns a [][]Time with exactly chains entries, reusing outer
// and inner capacity (nil Scratch → fresh).
func (sc *Scratch) laddersBuf(chains int) [][]task.Time {
	if sc == nil {
		return make([][]task.Time, chains)
	}
	if cap(sc.ladders) < chains {
		grown := make([][]task.Time, chains)
		copy(grown, sc.ladders[:cap(sc.ladders)])
		sc.ladders = grown
	} else {
		sc.ladders = sc.ladders[:chains]
	}
	for k := range sc.ladders {
		sc.ladders[k] = sc.ladders[k][:0]
	}
	return sc.ladders
}

// Generated task names are interned so the per-sample path does not
// Sprintf: sets beyond the cache size (far past any experiment's) fall
// back to formatting.
const nameCacheSize = 1024

var uniformNames, harmonicNames [nameCacheSize]string

func init() {
	for i := 0; i < nameCacheSize; i++ {
		uniformNames[i] = fmt.Sprintf("t%d", i)
		harmonicNames[i] = fmt.Sprintf("h%d", i)
	}
}

func uniformName(i int) string {
	if i < nameCacheSize {
		return uniformNames[i]
	}
	return fmt.Sprintf("t%d", i)
}

func harmonicName(i int) string {
	if i < nameCacheSize {
		return harmonicNames[i]
	}
	return fmt.Sprintf("h%d", i)
}
