// Package edfa implements exact uniprocessor EDF schedulability analysis
// for constrained-deadline sporadic tasks via the processor demand
// criterion (Baruah, Rosier & Howell): the system is schedulable iff the
// demand bound function satisfies dbf(t) ≤ t at every absolute deadline in
// the synchronous busy period. The check uses QPA (Zhang & Burns), which
// walks backwards from the busy-period end visiting only a handful of
// points, making the test fast enough to sit inside packing loops.
//
// The paper positions its fixed-priority results against EDF-based
// splitting algorithms (§I cites a 65% bound as the EDF state of the art);
// this package is the analysis substrate for the EDF-TS comparator in
// internal/partition: each (fragment of a) task is modelled as an
// independent sporadic task (C, T, D ≤ T), where a split fragment's D is
// its window and its activation offset only delays demand (the synchronous
// dbf remains a sound upper bound).
package edfa

import (
	"repro/internal/mathx"
	"repro/internal/task"
)

// Demand is one sporadic demand source: C units every T, due D after
// release (0 < C ≤ D ≤ T).
type Demand struct {
	C, T, D task.Time
}

// DBF returns the demand bound function of the sources at time t:
// Σ max(0, ⌊(t − D_i)/T_i⌋ + 1) · C_i.
func DBF(sources []Demand, t task.Time) task.Time {
	var sum task.Time
	for _, s := range sources {
		if t < s.D {
			continue
		}
		n := (t-s.D)/s.T + 1
		sum = mathx.AddSat(sum, mathx.MulSat(n, s.C))
	}
	return sum
}

// Utilization returns ΣC/T of the sources.
func Utilization(sources []Demand) float64 {
	u := 0.0
	for _, s := range sources {
		u += float64(s.C) / float64(s.T)
	}
	return u
}

// BusyPeriod returns the length of the synchronous busy period: the least
// fixed point of L = Σ ⌈L/T_i⌉·C_i, saturating at limit (which the fixed
// point exceeds iff utilization is 1 or limit is too small).
func BusyPeriod(sources []Demand, limit task.Time) task.Time {
	var l task.Time
	for _, s := range sources {
		l = mathx.AddSat(l, s.C)
	}
	for {
		if l > limit {
			return limit
		}
		var next task.Time
		for _, s := range sources {
			next = mathx.AddSat(next, mathx.MulSat(mathx.CeilDiv(l, s.T), s.C))
		}
		if next == l {
			return l
		}
		l = next
	}
}

// analysisLimit caps the busy period the analysis is willing to examine.
// A longer busy period (utilization extremely close to 1) is rejected
// conservatively; with this repository's tick granularities that never
// triggers below ≈99.99% utilization.
const analysisLimit = 1 << 34

// lastDeadlineBefore returns the largest absolute deadline point
// d_i + k·T_i strictly below t, or 0 if none exists.
func lastDeadlineBefore(sources []Demand, t task.Time) task.Time {
	var best task.Time
	for _, s := range sources {
		if t <= s.D {
			continue
		}
		k := (t - s.D - 1) / s.T
		if p := s.D + k*s.T; p > best {
			best = p
		}
	}
	return best
}

// Schedulable reports whether the demand sources are EDF-schedulable on a
// single processor. Exact for constrained-deadline sporadic tasks with
// utilization below 1 (and for implicit-deadline sets up to exactly 1);
// constrained sets at utilization ≥ 1 − 1e-9 whose busy period cannot be
// bounded are rejected conservatively.
func Schedulable(sources []Demand) bool {
	if len(sources) == 0 {
		return true
	}
	u := 0.0
	implicit := true
	for _, s := range sources {
		if s.C <= 0 || s.D <= 0 || s.T <= 0 || s.C > s.D || s.D > s.T {
			return false
		}
		u += float64(s.C) / float64(s.T)
		if s.D != s.T {
			implicit = false
		}
	}
	const eps = 1e-9
	if u > 1+eps {
		return false
	}
	if implicit {
		// Implicit deadlines: EDF is schedulable iff U ≤ 1.
		return true
	}
	l := BusyPeriod(sources, analysisLimit)
	if l >= analysisLimit {
		return false // cannot bound the check interval; reject conservatively
	}
	// QPA: walk backwards from the last deadline before (or at) L.
	var dmin task.Time = -1
	for _, s := range sources {
		if dmin < 0 || s.D < dmin {
			dmin = s.D
		}
	}
	t := lastDeadlineBefore(sources, l+1)
	for t >= dmin && t > 0 {
		h := DBF(sources, t)
		if h > t {
			return false
		}
		if h < t {
			t = h
			// t may now lie below every deadline; the loop condition ends
			// the walk. If it is not itself a deadline point, the next
			// dbf(t) equals dbf at the last deadline ≤ t, which is what
			// the criterion needs.
		} else {
			t = lastDeadlineBefore(sources, t)
		}
	}
	return true
}

// MaxAdditionalDemand returns the largest execution budget c ≤ cap such
// that adding a new source (c, t, d) keeps the sources EDF-schedulable,
// computed by binary search (the demand test is monotone in c). Returns 0
// if even c = 1 does not fit.
func MaxAdditionalDemand(sources []Demand, t, d, cap task.Time) task.Time {
	if cap > d {
		cap = d
	}
	if cap <= 0 {
		return 0
	}
	buf := make([]Demand, len(sources)+1)
	copy(buf, sources)
	feasible := func(c task.Time) bool {
		if c == 0 {
			return true
		}
		buf[len(sources)] = Demand{C: c, T: t, D: d}
		return Schedulable(buf)
	}
	if feasible(cap) {
		return cap
	}
	lo, hi := task.Time(0), cap
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
