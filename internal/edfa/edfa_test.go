package edfa

import (
	"math/rand"
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestDBFBasics(t *testing.T) {
	src := []Demand{{C: 2, T: 10, D: 6}}
	cases := []struct{ t, want task.Time }{
		{0, 0}, {5, 0}, {6, 2}, {15, 2}, {16, 4}, {26, 6},
	}
	for _, c := range cases {
		if got := DBF(src, c.t); got != c.want {
			t.Errorf("dbf(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestBusyPeriod(t *testing.T) {
	src := []Demand{{C: 2, T: 4, D: 4}, {C: 1, T: 8, D: 8}}
	// L = 2+1 = 3 → 2·⌈3/4⌉+1 = 3 ✓ fixed point.
	if got := BusyPeriod(src, 1000); got != 3 {
		t.Errorf("busy period = %d, want 3", got)
	}
	// Full utilization: the recurrence w(L) = Σ⌈L/T⌉C first reaches a
	// fixed point at the hyperperiod (w(L) ≥ U·L with equality only at
	// common multiples of the periods).
	full := []Demand{{C: 4, T: 4, D: 4}}
	if got := BusyPeriod(full, 1000); got != 4 {
		t.Errorf("full-utilization busy period = %d, want 4 (hyperperiod)", got)
	}
	over := []Demand{{C: 4, T: 4, D: 4}, {C: 1, T: 7, D: 7}}
	if got := BusyPeriod(over, 1000); got != 1000 {
		t.Errorf("overloaded busy period = %d, want saturation at the limit", got)
	}
}

func TestSchedulableImplicit(t *testing.T) {
	// Implicit deadlines: U ≤ 1 exactly.
	ok := Schedulable([]Demand{{C: 3, T: 6, D: 6}, {C: 5, T: 10, D: 10}})
	if !ok {
		t.Error("U=1.0 implicit set rejected")
	}
	if Schedulable([]Demand{{C: 3, T: 6, D: 6}, {C: 6, T: 10, D: 10}}) {
		t.Error("U=1.1 accepted")
	}
}

func TestSchedulableConstrainedExamples(t *testing.T) {
	// (2,10,4) and (3,10,5): dbf(4)=2, dbf(5)=5 ≤ 5 ✓ schedulable.
	if !Schedulable([]Demand{{C: 2, T: 10, D: 4}, {C: 3, T: 10, D: 5}}) {
		t.Error("feasible constrained pair rejected")
	}
	// (3,10,4) and (3,10,5): dbf(5) = 6 > 5 → unschedulable.
	if Schedulable([]Demand{{C: 3, T: 10, D: 4}, {C: 3, T: 10, D: 5}}) {
		t.Error("overloaded deadline window accepted")
	}
}

func TestSchedulableRejectsInvalid(t *testing.T) {
	bad := [][]Demand{
		{{C: 0, T: 5, D: 5}},
		{{C: 2, T: 5, D: 1}},
		{{C: 2, T: 5, D: 6}},
		{{C: 2, T: 0, D: 0}},
	}
	for i, src := range bad {
		if Schedulable(src) {
			t.Errorf("invalid source %d accepted", i)
		}
	}
	if !Schedulable(nil) {
		t.Error("empty set rejected")
	}
}

func TestSchedulableMatchesBruteForce(t *testing.T) {
	// QPA must agree with full dbf enumeration over the busy period.
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 400; trial++ {
		n := 1 + r.Intn(5)
		src := make([]Demand, 0, n)
		for i := 0; i < n; i++ {
			T := task.Time(5 + r.Intn(40))
			C := task.Time(1 + r.Intn(int(T)/2))
			D := C + task.Time(r.Intn(int(T-C)+1))
			src = append(src, Demand{C: C, T: T, D: D})
		}
		if Utilization(src) > 0.999 {
			continue
		}
		want := bruteForce(src)
		got := Schedulable(src)
		if got != want {
			t.Fatalf("trial %d: QPA=%v brute=%v for %v", trial, got, want, src)
		}
	}
}

func bruteForce(src []Demand) bool {
	l := BusyPeriod(src, 1<<20)
	if l >= 1<<20 {
		return false
	}
	for _, s := range src {
		for t := s.D; t <= l; t += s.T {
			if DBF(src, t) > t {
				return false
			}
		}
	}
	return true
}

func TestSchedulableMatchesSimulation(t *testing.T) {
	// For periodic synchronous release, the demand criterion is exact:
	// edfa.Schedulable must agree with EDF simulation over the
	// hyperperiod (+ max deadline).
	r := rand.New(rand.NewSource(82))
	menu := []task.Time{4, 8, 12, 16, 24}
	agreeSched, agreeUnsched := 0, 0
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(4)
		ts := make(task.Set, 0, n)
		src := make([]Demand, 0, n)
		for i := 0; i < n; i++ {
			T := menu[r.Intn(len(menu))]
			C := task.Time(1 + r.Intn(int(T)/2))
			D := C + task.Time(r.Intn(int(T-C)+1))
			ts = append(ts, task.Task{Name: "e", C: C, T: T, D: D})
			src = append(src, Demand{C: C, T: T, D: D})
		}
		if Utilization(src) > 0.999 {
			continue
		}
		want := Schedulable(src)
		sorted := ts.Clone()
		sorted.SortDM()
		asg := task.NewAssignment(sorted, 1)
		for i, tk := range sorted {
			asg.Add(0, task.Whole(i, tk))
		}
		hyper := sorted.Hyperperiod()
		rep, err := sim.Simulate(asg, sim.Options{
			Policy:     sim.PolicyEDF,
			Horizon:    mathx.MulSat(hyper, 2),
			StopOnMiss: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ok() != want {
			t.Fatalf("trial %d: analysis=%v simulation=%v for %v", trial, want, rep.Ok(), ts)
		}
		if want {
			agreeSched++
		} else {
			agreeUnsched++
		}
	}
	if agreeSched < 40 || agreeUnsched < 20 {
		t.Errorf("weak coverage: %d schedulable, %d unschedulable", agreeSched, agreeUnsched)
	}
}

func TestMaxAdditionalDemand(t *testing.T) {
	src := []Demand{{C: 2, T: 10, D: 4}}
	// New source (c, 10, 10): dbf points... c is capped by schedulability.
	got := MaxAdditionalDemand(src, 10, 10, 10)
	if got <= 0 || got > 8 {
		t.Fatalf("max demand = %d", got)
	}
	// The result must be maximal.
	if !Schedulable(append(append([]Demand(nil), src...), Demand{C: got, T: 10, D: 10})) {
		t.Error("returned budget infeasible")
	}
	if got < 10 && Schedulable(append(append([]Demand(nil), src...), Demand{C: got + 1, T: 10, D: 10})) {
		t.Error("budget not maximal")
	}
	if MaxAdditionalDemand(src, 10, 0, 5) != 0 {
		t.Error("zero window should yield zero budget")
	}
}

func TestMaxAdditionalDemandAgainstLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(3)
		src := make([]Demand, 0, n)
		for i := 0; i < n; i++ {
			T := task.Time(6 + r.Intn(30))
			C := task.Time(1 + r.Intn(int(T)/3))
			D := C + task.Time(r.Intn(int(T-C)+1))
			src = append(src, Demand{C: C, T: T, D: D})
		}
		T := task.Time(6 + r.Intn(30))
		D := task.Time(1 + r.Intn(int(T)))
		got := MaxAdditionalDemand(src, T, D, T)
		want := task.Time(0)
		for c := task.Time(1); c <= D; c++ {
			if Schedulable(append(append([]Demand(nil), src...), Demand{C: c, T: T, D: D})) {
				want = c
			} else {
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: binary %d vs linear %d (src=%v T=%d D=%d)", trial, got, want, src, T, D)
		}
	}
}
