// Package xrand provides a drop-in replacement for math/rand's default
// Source64 whose Seed is far cheaper, producing BIT-IDENTICAL output.
//
// Why it exists: the experiment harness reseeds one persistent RNG per
// sample ((*rand.Rand).Seed(s) must restore exactly the state of
// rand.New(rand.NewSource(s)) — the determinism contract of parEach), and
// profiling shows that at benchmark scale the stdlib reseed dominates the
// per-sample cost: rngSource.Seed runs a ~1841-step sequential Lehmer
// recurrence to refill its 607-word lagged-Fibonacci state, even though a
// typical sample then draws only a few dozen values from it.
//
// Two ideas remove almost all of that work while keeping the output stream
// bit-identical:
//
//  1. Leapfrog chains. The stdlib fills word i from three consecutive draws
//     of one serial Lehmer recurrence. Splitting the recurrence into twelve
//     chains that each advance by A¹² = 48271¹² mod (2³¹−1) yields the same
//     draws with twelve-way instruction-level parallelism, and — because
//     A^k mod M is a precomputable constant for any fixed k — lets a chain
//     jump to ANY word index with a single multiply.
//
//  2. Lazy, demand-driven fill. The lagged-Fibonacci consumer reads the
//     seeded state in a fixed order: draw k reads slot 333−k (the feed, then
//     overwritten) and slot 606−k (the tap), so the seed-original value of
//     every slot is consumed by two strictly descending single-pass windows
//     — [333..0] and [606..334]. Seed therefore only positions chain states
//     at the top of each window (one jump multiply per chain) and each slot
//     is materialized right before its first read, stepping the chains
//     DOWNWARD by A⁻¹² as the windows descend. A source that draws n values
//     pays O(n) fill work instead of all 607 words; a source that drains
//     everything does the same total work as an eager fill.
//
// The stdlib generator is frozen by the Go 1 compatibility promise (its
// output is documented to be stable for a given seed), which is what makes
// mirroring it sound. Rather than embedding the 607-word additive-feedback
// seasoning table (rngCooked, an unexported stdlib array), it is recovered
// from observable stdlib outputs at init time and the whole construction is
// self-verified against math/rand before first use — if any stdlib detail
// ever shifted, init panics rather than silently diverging a golden table.
package xrand

import (
	"fmt"
	"math/rand"
)

const (
	rngLen  = 607 // degree of the lagged-Fibonacci recurrence
	rngTap  = 273 // lag distance: vec[feed] += vec[tap]
	lehmerM = 1<<31 - 1
	lehmerA = 48271 // Park–Miller multiplier used by the stdlib seed scrambler
)

// cooked mirrors math/rand's rngCooked seasoning table, recovered from
// stdlib outputs in init (see recoverCooked): after Seed(s) the state word i
// is lehmerFill(s)[i] XOR cooked[i].
var cooked [rngLen]uint64

// Powers of the scrambler multiplier (mod M = 2³¹−1, a prime):
//
//	lehmerA12    — A¹², the per-stride advance of the twelve leapfrog chains
//	               (four words per stride, three draws per word);
//	lehmerAinv12 — A⁻¹² = (A¹²)^(M−2), the DOWNWARD stride used by the lazy
//	               fill as the two consumption windows descend;
//	lehmerJump83, lehmerJump151 — A¹²ˣ⁸³ and A¹²ˣ¹⁵¹, the one-multiply jumps
//	               from stride 0 to the strides holding slot 333 (= 4·83+1,
//	               top of the feed window) and slot 606 (= 4·151+2, top of
//	               the tap window).
var (
	lehmerA12     uint64
	lehmerAinv12  uint64
	lehmerJump83  uint64
	lehmerJump151 uint64
)

// Source is a math/rand-compatible Source64 with the fast lazy Seed. The
// zero value must be seeded before use.
type Source struct {
	vec  [rngLen]int64
	tap  int
	feed int

	// Lazy-fill state. feedFill is the next slot of [333..0] awaiting its
	// pre-first-read fill (−1 when the window is drained); tapFill the next
	// slot of [606..334] (−2 when drained — a sentinel the tap cursor can
	// never equal, unlike 333 which it passes on draw 273). fch and tch hold
	// the twelve chain states (a0,b0,c0, …, a3,b3,c3) at the stride of each
	// window's current slot.
	feedFill int
	tapFill  int
	fch      [12]uint64
	tch      [12]uint64
}

// New returns a Source seeded with seed, equivalent (output-wise) to
// rand.NewSource(seed).
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// lehmer returns x·k mod M for x ∈ [1, M), k ∈ [1, M), M = 2³¹−1, without a
// division: the product (< 2⁶²) folds mod the Mersenne prime in two shifts.
// The result is never 0 because M is prime and neither factor is ≡ 0.
func lehmer(x, k uint64) uint64 {
	p := x * k
	r := (p >> 31) + (p & lehmerM)
	r = (r >> 31) + (r & lehmerM)
	if r >= lehmerM {
		r -= lehmerM
	}
	return r
}

// lehmerPow returns base^e mod M by square-and-multiply over lehmer.
func lehmerPow(base, e uint64) uint64 {
	r := uint64(1)
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = lehmer(r, base)
		}
		base = lehmer(base, base)
	}
	return r
}

// seedPrep reduces a raw int64 seed into the scrambler's starting value,
// exactly as the stdlib does (mod 2³¹−1, negatives shifted up, 0 remapped).
func seedPrep(seed int64) uint64 {
	seed = seed % lehmerM
	if seed < 0 {
		seed += lehmerM
	}
	if seed == 0 {
		seed = 89482311
	}
	return uint64(seed)
}

// Seed resets the source to draw the exact stream rand.NewSource(seed)
// would. The stdlib fills word i from three consecutive Lehmer draws (after
// a 20-step warmup) as (x₁<<40 ^ x₂<<20 ^ x₃) ^ cooked[i]; word i = 4g+k is
// thus chain triple k advanced g strides of A¹². Seed runs only the warmup
// plus the twelve serial draws that define the stride-0 chain states, then
// jump-multiplies them to the top of the two consumption windows; the state
// words themselves are materialized lazily by Uint64 as each slot's first
// read approaches (see fillSlot).
func (s *Source) Seed(seed int64) {
	x := seedPrep(seed)
	for i := 0; i < 20; i++ {
		x = lehmer(x, lehmerA)
	}
	for i := 0; i < 12; i++ {
		x = lehmer(x, lehmerA)
		s.fch[i] = x
	}
	for i := 0; i < 12; i++ {
		s.tch[i] = lehmer(s.fch[i], lehmerJump151)
		s.fch[i] = lehmer(s.fch[i], lehmerJump83)
	}
	s.feedFill = 333
	s.tapFill = rngLen - 1
	s.tap = 0
	s.feed = rngLen - rngTap
}

// fillSlot materializes state word w from the window chain state ch, which
// must currently sit at stride w/4, and steps the chains down one stride
// when the window's next slot (w−1) crosses a group boundary. Windows fill
// strictly descending, so each slot is produced exactly once per Seed.
func (s *Source) fillSlot(ch *[12]uint64, w int) {
	k := (w & 3) * 3
	s.vec[w] = int64((ch[k]<<40 ^ ch[k+1]<<20 ^ ch[k+2]) ^ cooked[w])
	if k == 0 && w > 0 {
		for i := range ch {
			ch[i] = lehmer(ch[i], lehmerAinv12)
		}
	}
}

// fillRest eagerly drains both lazy windows, leaving vec fully materialized
// — the state an eager Seed would have built. Only recoverCooked needs it.
func (s *Source) fillRest() {
	for s.tapFill >= rngLen-rngTap {
		s.fillSlot(&s.tch, s.tapFill)
		s.tapFill--
	}
	s.tapFill = -2
	for s.feedFill >= 0 {
		s.fillSlot(&s.fch, s.feedFill)
		s.feedFill--
	}
}

// Uint64 implements rand.Source64, stepping the additive lagged-Fibonacci
// recurrence exactly like the stdlib: decrement both cursors (wrapping),
// write vec[feed] += vec[tap], return the sum. The two fill checks
// materialize a slot the first time a cursor is about to read it; both
// compare against strictly descending watermarks, so they are well-predicted
// and cost nothing once the windows drain.
func (s *Source) Uint64() uint64 {
	t := s.tap - 1
	if t < 0 {
		t += rngLen
	}
	f := s.feed - 1
	if f < 0 {
		f += rngLen
	}
	if f == s.feedFill {
		s.fillSlot(&s.fch, f)
		s.feedFill--
	}
	if t == s.tapFill {
		s.fillSlot(&s.tch, t)
		s.tapFill--
		if s.tapFill < rngLen-rngTap {
			// Window drained: park below any reachable cursor value — the
			// tap passes slot 333 on draw 273, after the feed rewrote it.
			s.tapFill = -2
		}
	}
	x := s.vec[f] + s.vec[t]
	s.vec[f] = x
	s.tap, s.feed = t, f
	return uint64(x)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() &^ (1 << 63))
}

func init() {
	lehmerA12 = lehmerPow(lehmerA, 12)
	lehmerAinv12 = lehmerPow(lehmerA12, lehmerM-2)
	lehmerJump83 = lehmerPow(lehmerA12, 83)
	lehmerJump151 = lehmerPow(lehmerA12, 151)
	recoverCooked()
	selfCheck()
}

// recoverCooked reconstructs the stdlib's seasoning table from observable
// outputs. With cursors starting at (tap, feed) = (0, 334), call k reads
// tap slot (606−k) mod 607 and writes feed slot (333−k) mod 607, and slot j
// is first overwritten at call (333−j) mod 607. All additions below are
// uint64-wrapping, matching the generator's own int64 wraparound. Two
// relations pin the whole initial state vec₀ from the first 607 outputs:
//
//   - k ∈ [273, 606]: the tap value is output k−273 (that slot was rewritten
//     exactly once, at call k−273), while the feed slot is still original:
//     vec₀[(333−k) mod 607] = out[k] − out[k−273]   → slots [0,60] ∪ [334,606]
//   - k ∈ [0, 272]: both operands are still original state words:
//     vec₀[333−k] = out[k] − vec₀[606−k]            → slots [61,333]
//
// where the second uses tap slots 606−k ∈ [334, 606] already recovered by
// the first. XORing out our own Lehmer fill for the same known seed (run
// with the cooked table still zero) leaves the cooked words.
func recoverCooked() {
	const probeSeed = 1
	src := rand.NewSource(probeSeed).(rand.Source64)
	var outs [rngLen]uint64
	for k := range outs {
		outs[k] = src.Uint64()
	}
	var vec0 [rngLen]uint64
	for k := rngTap; k < rngLen; k++ {
		slot := ((333-k)%rngLen + rngLen) % rngLen
		vec0[slot] = outs[k] - outs[k-rngTap]
	}
	for k := 0; k < rngTap; k++ {
		vec0[333-k] = outs[k] - vec0[606-k]
	}
	var s Source // cooked is still all-zero: Seed yields the raw Lehmer fill
	s.Seed(probeSeed)
	s.fillRest()
	for i := range cooked {
		cooked[i] = vec0[i] ^ uint64(s.vec[i])
	}
}

// selfCheck verifies the reconstruction end-to-end: for several seeds the
// Source must emit exactly the stdlib stream, including after mid-stream
// reseeds. The checked span covers both lazy windows draining plus a full
// wraparound of the recurrence. Panicking here (at init, before any
// experiment runs) is the firewall that keeps golden tables from ever
// drifting silently.
func selfCheck() {
	s := &Source{}
	for _, seed := range []int64{0, 1, -1, 42, 1 << 62, -(1 << 62)} {
		ref := rand.NewSource(seed).(rand.Source64)
		s.Seed(seed)
		for i := 0; i < rngLen+rngTap+16; i++ {
			if got, want := s.Uint64(), ref.Uint64(); got != want {
				panic(fmt.Sprintf("xrand: self-check diverged from math/rand at seed %d output %d: got %#x want %#x", seed, i, got, want))
			}
		}
	}
}
