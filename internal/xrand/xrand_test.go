package xrand

import (
	"math"
	"math/rand"
	"testing"
)

// TestBitIdenticalToStdlib is the package's whole contract: a *rand.Rand
// over Source must behave exactly like one over rand.NewSource, across the
// derived-value methods the generators actually call (Float64, Intn, Int63,
// Int63n, Perm), for adversarial seeds, and across mid-stream reseeds.
func TestBitIdenticalToStdlib(t *testing.T) {
	seeds := []int64{
		0, 1, -1, 2, 89482311, math.MaxInt64, math.MinInt64,
		1<<31 - 1, 1 << 31, -(1<<31 - 1), 7919,
	}
	got := rand.New(New(0))
	want := rand.New(rand.NewSource(0))
	for _, seed := range seeds {
		got.Seed(seed)
		want.Seed(seed)
		for i := 0; i < 1500; i++ {
			switch i % 5 {
			case 0:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 1:
				if g, w := got.Intn(997), want.Intn(997); g != w {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, g, w)
				}
			case 2:
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, g, w)
				}
			case 3:
				if g, w := got.Int63n(1e12), want.Int63n(1e12); g != w {
					t.Fatalf("seed %d draw %d: Int63n %v != %v", seed, i, g, w)
				}
			case 4:
				gp, wp := got.Perm(10), want.Perm(10)
				for j := range gp {
					if gp[j] != wp[j] {
						t.Fatalf("seed %d draw %d: Perm %v != %v", seed, i, gp, wp)
					}
				}
			}
		}
	}
}

// TestReseedMatchesFreshSource pins the exact property parEach relies on:
// Seed(s) on a used source restores the state of a brand-new source.
func TestReseedMatchesFreshSource(t *testing.T) {
	s := New(12345)
	for i := 0; i < 10_000; i++ {
		s.Uint64() // scramble well past one full state cycle
	}
	for _, seed := range []int64{3, -99, 0, math.MaxInt64 - 1} {
		s.Seed(seed)
		fresh := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 700; i++ {
			if g, w := s.Uint64(), fresh.Uint64(); g != w {
				t.Fatalf("reseed(%d) output %d: %#x != %#x", seed, i, g, w)
			}
		}
	}
}

func BenchmarkSeed(b *testing.B) {
	s := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedStdlib(b *testing.B) {
	s := rand.NewSource(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}
