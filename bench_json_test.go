package repro

// Machine-readable benchmark emission for the hot-path acceptance numbers
// (ISSUE 3): `go test -run BenchHotpathJSON -benchjson=BENCH_hotpath.json .`
// runs the hot-path benchmarks through testing.Benchmark and writes ns/op,
// B/op, allocs/op plus every ReportMetric extra (rta-iters/op,
// warm-starts/op, splits/op, ...) as JSON, so CI and EXPERIMENTS.md record
// comparable numbers instead of scraping bench output.

import (
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
)

var benchJSONPath = flag.String("benchjson", "", "write hot-path benchmark results as JSON to this path")

// benchMeta mirrors perfdiff.Meta so records are attributable: two captures
// that disagree should say which toolchain, CPU budget and revision each
// came from.
type benchMeta struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitRev     string `json:"git_rev"`
}

type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func TestBenchHotpathJSON(t *testing.T) {
	if *benchJSONPath == "" {
		t.Skip("pass -benchjson=<path> to emit machine-readable hot-path benchmarks")
	}
	hot := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"E2AcceptanceGeneral", BenchmarkE2AcceptanceGeneral},
		{"RTAProcessor", BenchmarkRTAProcessor},
		{"BatchRTAKernel", BenchmarkBatchRTAKernel},
		{"MaxSplitTestingPoint", BenchmarkMaxSplitTestingPoint},
		{"PartitionRMTS", BenchmarkPartitionRMTS},
		{"PartitionRMTSArena", BenchmarkPartitionRMTSArena},
		{"AdmitService", BenchmarkAdmitService},
		{"AdmitServiceJournaled", BenchmarkAdmitServiceJournaled},
	}
	records := make([]benchRecord, 0, len(hot))
	for _, h := range hot {
		res := testing.Benchmark(h.fn)
		rec := benchRecord{
			Name:        h.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if len(res.Extra) > 0 {
			rec.Extra = res.Extra
		}
		records = append(records, rec)
		t.Logf("%s: %.0f ns/op, %d B/op, %d allocs/op", h.name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}
	meta := benchMeta{Schema: 1, GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), GitRev: "unknown"}
	if rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		meta.GitRev = strings.TrimSpace(string(rev))
	}
	doc := struct {
		Meta       benchMeta     `json:"meta"`
		Benchmarks []benchRecord `json:"benchmarks"`
	}{meta, records}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchJSONPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *benchJSONPath)
}
