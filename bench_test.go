package repro

// One benchmark per experiment key (DESIGN.md §4) — running
// `go test -bench=. -benchmem` regenerates every table/figure of the
// evaluation at benchmark scale (Quick config, reduced set counts), and a
// set of micro-benchmarks for the analysis primitives. For
// publication-scale tables use cmd/experiments, which runs the full
// sweeps.

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"repro/internal/admit"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/split"
	"repro/internal/task"
)

func benchExperiment(b *testing.B, key string) {
	e, ok := experiments.Find(key)
	if !ok {
		b.Fatalf("experiment %s not registered", key)
	}
	// Collect domain metrics alongside ns/op: the obs counters cost one
	// atomic add each and do not perturb the measured algorithms.
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(experiments.Config{Seed: int64(i) + 1, SetsPerPoint: 10, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
	perOp := func(name string) float64 { return float64(obs.Value(name)) / float64(b.N) }
	b.ReportMetric(perOp("rta.iterations"), "rta-iters/op")
	b.ReportMetric(perOp("rta.cache.warm_starts"), "warm-starts/op")
	b.ReportMetric(perOp("partition.splits"), "splits/op")
	b.ReportMetric(perOp("partition.prefilter.hits"), "prefilter-hits/op")
}

func BenchmarkE1BoundsTable(b *testing.B)        { benchExperiment(b, "bounds-table") }
func BenchmarkE2AcceptanceGeneral(b *testing.B)  { benchExperiment(b, "acceptance-general") }
func BenchmarkE3AcceptanceLight(b *testing.B)    { benchExperiment(b, "acceptance-light") }
func BenchmarkE4AcceptanceHarmonic(b *testing.B) { benchExperiment(b, "acceptance-harmonic") }
func BenchmarkE5AcceptanceKChains(b *testing.B)  { benchExperiment(b, "acceptance-kchains") }
func BenchmarkE6Breakdown(b *testing.B)          { benchExperiment(b, "breakdown") }
func BenchmarkE7ProcsSweep(b *testing.B)         { benchExperiment(b, "procs-sweep") }
func BenchmarkE8HeavySweep(b *testing.B)         { benchExperiment(b, "heavy-sweep") }
func BenchmarkE9MaxSplitAblation(b *testing.B)   { benchExperiment(b, "split-ablation") }
func BenchmarkE10SimulateVerify(b *testing.B)    { benchExperiment(b, "simulate-verify") }
func BenchmarkE11UtilizationTail(b *testing.B)   { benchExperiment(b, "utilization-tail") }
func BenchmarkE12GlobalCompare(b *testing.B)     { benchExperiment(b, "global-compare") }
func BenchmarkE13OverheadSensitivity(b *testing.B) {
	benchExperiment(b, "overhead-sensitivity")
}
func BenchmarkE14AdmissionAblation(b *testing.B) { benchExperiment(b, "admission-ablation") }
func BenchmarkE15FPvsEDF(b *testing.B)           { benchExperiment(b, "fp-vs-edf") }
func BenchmarkE16ConstrainedDeadlines(b *testing.B) {
	benchExperiment(b, "constrained-deadlines")
}
func BenchmarkE17AnalysisPessimism(b *testing.B) { benchExperiment(b, "analysis-pessimism") }
func BenchmarkE18UniBreakdown(b *testing.B)      { benchExperiment(b, "uni-breakdown") }

// --- micro-benchmarks for the analysis primitives ---

func benchSets(n int, m int, umax float64) []task.Set {
	r := rand.New(rand.NewSource(1234))
	sets := make([]task.Set, n)
	for i := range sets {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 0.8 * float64(m), UMin: 0.05, UMax: umax})
		if err != nil {
			panic(err)
		}
		sets[i] = ts
	}
	return sets
}

func BenchmarkRTAProcessor(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	var lists [][]task.Subtask
	for len(lists) < 64 {
		n := 5 + r.Intn(10)
		list := make([]task.Subtask, 0, n)
		for i := 0; i < n; i++ {
			T := task.Time(100 + r.Intn(9900))
			C := task.Time(1 + r.Intn(int(T)/12))
			list = append(list, task.Subtask{TaskIndex: i, Part: 1, C: C, T: T, Deadline: T, Tail: true})
		}
		lists = append(lists, list)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rta.ProcessorSchedulable(lists[i%len(lists)])
	}
}

// BenchmarkBatchRTAKernel exercises the struct-of-arrays ProcState hot loop
// in isolation: a pool of prefilled processors, each op probing one whole
// admission (AdmitAt), the capped slack scan a split would run, and an
// insert/remove churn cycle against warm caches. The batch path must stay
// allocation-free — the 0 allocs/op here is pinned by the perfdiff gate.
func BenchmarkBatchRTAKernel(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	var states []rta.ProcState
	states = rta.ResetProcStates(states, 16, 0)
	var cands []task.Subtask
	for q := range states {
		ps := &states[q]
		next := 0
		for ps.Len() < 8 {
			T := task.Time(100 + r.Intn(9900))
			C := task.Time(1 + r.Intn(int(T)/10))
			if ps.AdmitAt(next, C, T, T) {
				ps.Insert(task.Subtask{TaskIndex: next, Part: 1, C: C, T: T, Deadline: T, Tail: true})
			}
			next += 2
		}
		T := task.Time(100 + r.Intn(9900))
		cands = append(cands, task.Subtask{TaskIndex: next, Part: 1,
			C: 1 + task.Time(r.Intn(int(T)/10)), T: T, Deadline: T, Tail: true})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(states)
		ps := &states[q]
		c := cands[q]
		if ps.AdmitAt(c.TaskIndex, c.C, c.T, c.Deadline) {
			ps.Remove(ps.Insert(c))
		}
		for pos := 0; pos < ps.Len(); pos++ {
			_ = ps.SlackAtMost(pos, c.T, c.C)
		}
	}
}

func BenchmarkMaxSplitTestingPoint(b *testing.B) {
	benchMaxSplit(b, split.MaxPortion)
}

func BenchmarkMaxSplitBinarySearch(b *testing.B) {
	benchMaxSplit(b, split.MaxPortionBinary)
}

func benchMaxSplit(b *testing.B, f func([]task.Subtask, task.Time, task.Time, task.Time) task.Time) {
	r := rand.New(rand.NewSource(3))
	type inst struct {
		list []task.Subtask
		t    task.Time
	}
	var cases []inst
	for len(cases) < 64 {
		n := 3 + r.Intn(6)
		list := make([]task.Subtask, 0, n)
		for i := 0; i < n; i++ {
			T := task.Time(100 + r.Intn(5000))
			C := task.Time(1 + r.Intn(int(T)/6))
			list = append(list, task.Subtask{TaskIndex: i + 1, Part: 1, C: C, T: T, Deadline: T, Tail: true})
		}
		if !rta.ProcessorSchedulable(list) {
			continue
		}
		cases = append(cases, inst{list, task.Time(100 + r.Intn(3000))})
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cases[i%len(cases)]
		f(c.list, c.t, c.t, c.t)
	}
	b.ReportMetric(float64(obs.Value("split.bin.probes"))/float64(b.N), "bin-probes/op")
	b.ReportMetric(float64(obs.Value("rta.slack.points"))/float64(b.N), "slack-points/op")
}

func BenchmarkPartitionRMTS(b *testing.B) {
	sets := benchSets(32, 8, 0.6)
	alg := partition.NewRMTS(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Partition(sets[i%len(sets)], 8)
	}
}

// BenchmarkPartitionRMTSArena is BenchmarkPartitionRMTS on the arena entry
// point with one persistent Arena — the steady state the experiment workers
// run in. The allocs/op delta against BenchmarkPartitionRMTS is the direct
// measure of what scratch reuse buys per partitioning call.
func BenchmarkPartitionRMTSArena(b *testing.B) {
	sets := benchSets(32, 8, 0.6)
	alg := partition.NewRMTS(nil)
	var ar partition.Arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.PartitionArena(sets[i%len(sets)], 8, &ar)
	}
}

func BenchmarkPartitionRMTSLight(b *testing.B) {
	sets := benchSets(32, 8, 0.4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.RMTSLight{}.Partition(sets[i%len(sets)], 8)
	}
}

func BenchmarkPartitionSPA2(b *testing.B) {
	sets := benchSets(32, 8, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.SPA2{}.Partition(sets[i%len(sets)], 8)
	}
}

func BenchmarkSimulateHyperperiod(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	ts, err := gen.TaskSet(r, gen.Config{
		TargetU: 3.0, UMin: 0.05, UMax: 0.4,
		Periods: gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200, 400}},
	})
	if err != nil {
		b.Fatal(err)
	}
	res := partition.NewRMTS(nil).Partition(ts, 4)
	if !res.OK {
		b.Fatal(res.Reason)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true, HorizonCap: 100_000})
		if err != nil || !rep.Ok() {
			b.Fatalf("err=%v ok=%v", err, rep.Ok())
		}
	}
}

// BenchmarkAdmitService measures the admission service's sustained hot
// path: one in-process admit per op against a prefilled steady-state
// cluster, with removal churn keeping the resident population bounded, so
// every op exercises the warm-start probe, the removal invalidation, and
// the rejection cache. 1e9/ns_per_op is the sustained admissions/sec on
// one box — the ci.sh gate requires ≥ 100k (ns/op ≤ 10µs).
func BenchmarkAdmitService(b *testing.B) {
	svc := admit.NewService(0)
	c, err := svc.Create(context.Background(), "bench", 8, partition.OnlineRTAFirstFit, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchAdmitService(b, c)
}

// BenchmarkAdmitServiceJournaled is the same workload with the write-ahead
// journal attached (fsync off, periodic snapshots disabled), so the delta
// against BenchmarkAdmitService is the pure journaling CPU cost per
// admission — record marshal plus buffered file append, no fsync syscalls
// and no background snapshot noise in the alloc counts. The ci.sh
// admissions/sec floor applies to the unjournaled variant only; this one
// is recorded in BENCH_hotpath.json so perfdiff flags drift in the
// durable path too.
func BenchmarkAdmitServiceJournaled(b *testing.B) {
	svc := admit.NewService(0)
	if _, err := svc.AttachJournal(admit.JournalConfig{
		Dir: b.TempDir(), Fsync: admit.FsyncOff, SnapshotEvery: -1,
	}); err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	c, err := svc.Create(context.Background(), "bench", 8, partition.OnlineRTAFirstFit, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchAdmitService(b, c)
}

func benchAdmitService(b *testing.B, c *admit.Cluster) {
	// Metrics stay ON for the measured loop: the acceptance bar for the
	// admission hot path is the instrumented number, not a telemetry-off
	// best case (EXPERIMENTS.md records the on/off delta separately).
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	ctx := context.Background()
	// A fixed cyclic task stream (period 35 in i) with occasional constrained
	// deadlines; deterministic, so baseline and current captures see the same
	// offered load.
	stream := func(i int) task.Task {
		T := task.Time(10 * (1 + i%7))
		tk := task.Task{C: 1 + task.Time(i%5), T: T}
		if i%5 == 4 {
			tk.D = tk.C + (T-tk.C)/2
		}
		return tk
	}
	// Ring of live handles: each op removes the oldest resident and admits
	// the next task of the stream, so the population stays at the steady
	// state and every op pays one Remove invalidation plus one warm admit.
	const residents = 64
	var ring [residents + 1]uint64
	head, tail := 0, 0
	live := func() int { return (tail - head + len(ring)) % len(ring) }
	for i := 0; live() < residents && i < 10_000; i++ {
		if res, err := c.Admit(ctx, stream(i)); err != nil {
			b.Fatal(err)
		} else if res.Accepted {
			ring[tail] = res.Handle
			tail = (tail + 1) % len(ring)
		}
	}
	if live() < residents {
		b.Fatalf("prefill stalled at %d residents", live())
	}
	accepted := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if live() >= residents {
			if _, err := c.Remove(context.Background(), ring[head]); err != nil {
				b.Fatal(err)
			}
			head = (head + 1) % len(ring)
		}
		res, err := c.Admit(ctx, stream(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Accepted {
			accepted++
			ring[tail] = res.Handle
			tail = (tail + 1) % len(ring)
		}
	}
	b.ReportMetric(float64(accepted)/float64(b.N), "accepted/op")
}

func BenchmarkBoundTest(b *testing.B) {
	sets := benchSets(32, 8, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoundTest(sets[i%len(sets)], 8)
	}
}
