// Command explain re-runs one partitioning decision and reports WHY it came
// out the way it did: the terminal verdict, the rejection cause, the bound
// context (Θ, Λ(τ), U_M), the failing task's final fragment, per-processor
// evidence (RTA responses, MaxSplit prefixes, threshold room), and the split
// chains of the assignment.
//
// Usage:
//
//	explain -set tasks.txt -m 4 [-algo ...] [-pub ...] [-json]
//	explain -recipe "repro: experiment=acceptance-general point=3 sample=7 base-seed=... sample-seed=..." [-quick] [-algo ...]
//
// The -recipe form accepts the replay recipe printed by a failing experiment
// sample (experiments.SampleError.Repro) and regenerates that exact task set
// from its seeds; -quick must match the original run's quick flag. Output is
// deterministic: identical inputs render byte-identical reports.
//
// Exit status: 0 the set is accepted with a guarantee, 1 it was analyzed and
// rejected (or packed without a guarantee), 2 usage or input error — including
// sets the analysis cannot even consider (invalid tasks, or a task model the
// chosen algorithm does not cover).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/explain"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/taskio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// replayInfo echoes the replayed coordinates in -json output, so a report is
// self-describing about where its task set came from.
type replayInfo struct {
	Experiment string `json:"experiment"`
	Point      int    `json:"point"`
	Sample     int    `json:"sample,omitempty"`
	SampleSeed int64  `json:"sample_seed"`
	Quick      bool   `json:"quick"`
}

type report struct {
	Replay *replayInfo `json:"replay,omitempty"`
	*explain.Explanation
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		setPath = fs.String("set", "", "task set file (text or JSON)")
		m       = fs.Int("m", 0, "number of processors (with -set)")
		recipe  = fs.String("recipe", "", "sample replay recipe (the \"repro: experiment=... sample-seed=...\" line of a sample error)")
		quick   = fs.Bool("quick", false, "the recipe's run used -quick scale")
		algo    = fs.String("algo", "auto", "algorithm: auto, rm-ts, rm-ts-light, spa1, spa2, ff, wf, edf-ff, edf-ts")
		pubName = fs.String("pub", "best", "parametric bound for RM-TS: ll, hc, t, r, best")
		jsonOut = fs.Bool("json", false, "emit the explanation as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "explain:", err)
		return 2
	}
	if (*setPath == "") == (*recipe == "") {
		return fail(fmt.Errorf("need exactly one of -set or -recipe"))
	}

	var (
		ts     task.Set
		procs  int
		replay *replayInfo
	)
	switch {
	case *recipe != "":
		if *m != 0 {
			return fail(fmt.Errorf("-m conflicts with -recipe (the experiment fixes the processor count)"))
		}
		rc, err := experiments.ParseRecipe(*recipe)
		if err != nil {
			return fail(err)
		}
		ts, procs, err = experiments.ReplaySample(rc.Experiment, *quick, rc.Point, rc.SampleSeed)
		if err != nil {
			return fail(err)
		}
		replay = &replayInfo{Experiment: rc.Experiment, Point: rc.Point,
			Sample: rc.Sample, SampleSeed: rc.SampleSeed, Quick: *quick}
	default:
		if *m < 1 {
			return fail(fmt.Errorf("-set needs -m ≥ 1 (got %d)", *m))
		}
		var err error
		ts, err = taskio.Load(*setPath)
		if err != nil {
			return fail(err)
		}
		procs = *m
	}

	pub, err := pubByName(*pubName)
	if err != nil {
		return fail(err)
	}
	alg, err := explain.AlgorithmByName(*algo, pub, ts)
	if err != nil {
		return fail(err)
	}

	// Metric counters feed the trace's per-decision RTA iteration deltas; a
	// fresh process starts them at zero, so the report stays deterministic.
	obs.SetEnabled(true)
	e := explain.Run(alg, ts, procs)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{Replay: replay, Explanation: e}); err != nil {
			return fail(err)
		}
	} else {
		if replay != nil {
			fmt.Fprintf(stdout, "replayed %s point %d (quick=%v), sample seed %d: %d tasks on %d processors\n\n",
				replay.Experiment, replay.Point, replay.Quick, replay.SampleSeed, len(ts), procs)
		}
		e.WriteText(stdout)
	}
	switch {
	case e.Verdict == "accepted":
		return 0
	case e.Cause == partition.CauseInvalidInput.String() || e.Cause == partition.CauseModelMismatch.String():
		// Not an analyzed verdict: the set never reached the admission test
		// (invalid tasks, or a model the algorithm does not cover). Exit 1 is
		// reserved for "analyzed and rejected", so these are usage errors.
		fmt.Fprintf(stderr, "explain: input not analyzable: %s\n", e.CauseDetail)
		return 2
	default:
		return 1
	}
}

func pubByName(name string) (bounds.PUB, error) {
	switch name {
	case "ll":
		return bounds.LiuLayland{}, nil
	case "hc":
		return bounds.HarmonicChain{Minimal: true}, nil
	case "t":
		return bounds.TBound{}, nil
	case "r":
		return bounds.RBound{}, nil
	case "best", "":
		return bounds.Max{Bounds: core.DefaultBounds()}, nil
	default:
		return nil, fmt.Errorf("unknown bound %q (want ll, hc, t, r, best)", name)
	}
}
