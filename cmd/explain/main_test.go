package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// rejectedRecipe replays a sample of the quick acceptance-general sweep at
// seed 7 that RM-TS rejects after one split (cause maxsplit-exhausted) — the
// fixture behind the golden report. The seeds come from RecipeFor; the sweep
// parameters are pinned by the replay registry, so this line stays valid as
// long as the generator streams do.
const rejectedRecipe = "repro: experiment=acceptance-general point=3 sample=0 base-seed=1871513160099489213 sample-seed=1871513160099489213"

func runCapture(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestRecipeReportGolden pins the full text report for the fixture recipe:
// byte-identical across runs and against testdata/recipe_rmts.golden.
// Regenerate with UPDATE_GOLDEN=1 go test ./cmd/explain/.
func TestRecipeReportGolden(t *testing.T) {
	args := []string{"-recipe", rejectedRecipe, "-quick", "-algo", "rm-ts"}
	out1, errb, code := runCapture(t, args...)
	if code != 1 {
		t.Fatalf("exit %d (stderr %q), want 1 for a rejected sample", code, errb)
	}
	out2, _, _ := runCapture(t, args...)
	if out1 != out2 {
		t.Fatal("report not byte-identical across runs")
	}

	golden := filepath.Join("testdata", "recipe_rmts.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(out1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != string(want) {
		t.Errorf("report drifted from golden:\n--- want\n%s--- got\n%s", want, out1)
	}

	// The report must name the violated test and its parameter values.
	for _, needle := range []string{
		"REJECTED", "maxsplit-exhausted", "failed task", "final fragment",
		"per-processor evidence", "U_M(τ)", "Λ(τ)",
	} {
		if !strings.Contains(out1, needle) {
			t.Errorf("report lacks %q", needle)
		}
	}
}

func TestRecipeJSON(t *testing.T) {
	out, errb, code := runCapture(t, "-recipe", rejectedRecipe, "-quick", "-algo", "rm-ts", "-json")
	if code != 1 {
		t.Fatalf("exit %d (stderr %q)", code, errb)
	}
	var rep struct {
		Replay *struct {
			Experiment string `json:"experiment"`
			Point      int    `json:"point"`
		} `json:"replay"`
		Verdict string `json:"verdict"`
		Cause   string `json:"cause"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Replay == nil || rep.Replay.Experiment != "acceptance-general" || rep.Replay.Point != 3 {
		t.Errorf("replay provenance missing: %s", out)
	}
	if rep.Verdict != "rejected" || rep.Cause != "maxsplit-exhausted" {
		t.Errorf("verdict=%q cause=%q", rep.Verdict, rep.Cause)
	}
}

func TestSetMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tasks.txt")
	if err := os.WriteFile(path, []byte("a 1 10\nb 2 20\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errb, code := runCapture(t, "-set", path, "-m", "2")
	if code != 0 {
		t.Fatalf("exit %d (stderr %q):\n%s", code, errb, out)
	}
	if !strings.Contains(out, "ACCEPTED") {
		t.Errorf("no ACCEPTED verdict:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // neither -set nor -recipe
		{"-set", "x", "-recipe", "y"},          // both
		{"-set", "nonexistent.txt", "-m", "2"}, // unreadable set
		{"-set", "x"},                          // missing -m
		{"-recipe", "garbage"},                 // unparsable recipe
		{"-recipe", rejectedRecipe, "-m", "4"}, // -m with -recipe
		{"-recipe", "repro: experiment=breakdown point=0 sample-seed=1"},             // not replayable
		{"-recipe", rejectedRecipe, "-algo", "nope"},                                 // unknown algorithm
		{"-recipe", rejectedRecipe, "-pub", "nope"},                                  // unknown bound
		{"-recipe", "experiment=acceptance-general point=3 sample=-2 sample-seed=5"}, // negative sample
	}
	for _, args := range cases {
		if _, _, code := runCapture(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

// TestExitCodeContract pins what each exit status means: 1 is reserved for
// "analyzed and rejected"; a set the algorithm cannot even consider (model
// mismatch) is a usage error, 2 — previously it leaked out as 1, making an
// unanalyzable input indistinguishable from a real rejection in scripts.
func TestExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	constrained := filepath.Join(dir, "constrained.json")
	if err := os.WriteFile(constrained, []byte(`{"tasks":[{"c":2,"t":10,"d":8},{"c":3,"t":15,"d":12}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// SPA1 covers only implicit deadlines: the constrained set is not
	// analyzable, so this is exit 2 with a diagnostic, not a verdict.
	out, errb, code := runCapture(t, "-set", constrained, "-m", "2", "-algo", "spa1")
	if code != 2 {
		t.Fatalf("model mismatch: exit %d (stdout %q), want 2", code, out)
	}
	if !strings.Contains(errb, "not analyzable") {
		t.Errorf("model mismatch lacks diagnostic on stderr: %q", errb)
	}

	// The same set under an algorithm that handles constrained deadlines is
	// analyzed normally — deadlines alone must not trip the usage path.
	if _, errb, code := runCapture(t, "-set", constrained, "-m", "2", "-algo", "ff"); code != 0 {
		t.Fatalf("constrained set under ff: exit %d (stderr %q), want 0", code, errb)
	}

	// A genuinely overloaded but valid set is an analyzed rejection: exit 1.
	overload := filepath.Join(dir, "overload.txt")
	if err := os.WriteFile(overload, []byte("a 9 10\nb 9 10\nc 9 10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, errb, code := runCapture(t, "-set", overload, "-m", "1", "-algo", "ff"); code != 1 {
		t.Fatalf("overloaded set: exit %d (stderr %q), want 1", code, errb)
	}
}
