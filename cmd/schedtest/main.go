// Command schedtest runs a task set through every analysis and algorithm
// in the repository and prints one comparison matrix — the "which technique
// accepts my workload, and what does it cost" view a system designer wants
// first.
//
// Usage:
//
//	schedtest -set tasks.txt -m 4 [-sim]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/global"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/taskio"
)

func main() {
	var (
		setPath = flag.String("set", "", "task set file (text or JSON)")
		m       = flag.Int("m", 2, "number of processors")
		doSim   = flag.Bool("sim", false, "also simulate every successful partition (capped hyperperiod)")
	)
	flag.Parse()
	if *setPath == "" {
		fmt.Fprintln(os.Stderr, "schedtest: -set is required")
		flag.Usage()
		os.Exit(2)
	}
	ts, err := taskio.Load(*setPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedtest:", err)
		os.Exit(2)
	}

	a := core.Analyze(ts, *m)
	fmt.Printf("%d tasks on %d processors — U(τ)=%.4f, U_M=%.4f, max U_i=%.4f\n",
		a.N, a.M, a.TotalU, a.NormalizedU, a.MaxU)
	fmt.Printf("implicit=%v light=%v harmonic chains K=%d\n\n", a.Implicit, a.Light, a.HarmonicChains)

	fmt.Println("bound-only admission (no packing):")
	for _, b := range core.DefaultBounds() {
		v := b.Value(ts)
		verdict := "-"
		if a.Implicit {
			ok := a.NormalizedU <= v
			effective := v
			if !a.Light {
				if c := bounds.RMTSCapFor(a.N); effective > c {
					effective = c
				}
				ok = a.NormalizedU <= effective
			}
			verdict = yn(ok)
		}
		fmt.Printf("  %-8s Λ=%6.2f%%  accepts: %s\n", b.Name(), 100*v, verdict)
	}
	if a.Implicit {
		fmt.Printf("  %-8s Λ=%6.2f%%  accepts: %s  (global RM-US bound)\n",
			"RM-US", 100*global.USBound(*m), yn(global.SchedulableByUSBound(ts, *m)))
	}
	fmt.Println()

	type entry struct {
		alg    partition.Algorithm
		policy sim.Policy
		verify func(*partition.Result) error
	}
	entries := []entry{
		{partition.RMTSLight{}, sim.PolicyFP, partition.Verify},
		{partition.NewRMTS(nil), sim.PolicyFP, partition.Verify},
		{partition.SPA1{}, sim.PolicyFP, nil},
		{partition.SPA2{}, sim.PolicyFP, nil},
		{partition.FirstFitRTA{}, sim.PolicyFP, partition.Verify},
		{partition.WorstFitRTA{}, sim.PolicyFP, partition.Verify},
		{partition.FirstFit{Admission: partition.AdmitHyperbolic}, sim.PolicyFP, nil},
		{partition.EDFFirstFit{}, sim.PolicyEDF, partition.VerifyEDF},
		{partition.EDFTS{}, sim.PolicyEDF, partition.VerifyEDF},
	}
	fmt.Println("partitioning algorithms:")
	fmt.Printf("  %-22s %-5s %-11s %-7s %-6s %-9s %s\n",
		"algorithm", "ok", "guaranteed", "splits", "pre", "time", "sim/verify")
	for _, e := range entries {
		start := time.Now()
		res := e.alg.Partition(ts, *m)
		elapsed := time.Since(start)
		extra := ""
		if res.OK {
			if e.verify != nil {
				if err := e.verify(res); err != nil {
					extra = "VERIFY FAILED: " + err.Error()
				} else {
					extra = "verified"
				}
			}
			if *doSim && res.Guaranteed {
				rep, err := sim.Simulate(res.Assignment, sim.Options{
					Policy: e.policy, StopOnMiss: true, HorizonCap: 1_000_000,
				})
				switch {
				case err != nil:
					extra += ", sim error: " + err.Error()
				case rep.Ok():
					extra += fmt.Sprintf(", sim clean (%d jobs)", rep.Completed)
				default:
					extra += fmt.Sprintf(", SIM MISS: %v", rep.Misses[0])
				}
			}
		} else {
			extra = res.Reason
		}
		fmt.Printf("  %-22s %-5s %-11s %-7d %-6d %-9s %s\n",
			e.alg.Name(), yn(res.OK), yn(res.OK && res.Guaranteed),
			res.NumSplit, res.NumPreAssigned, elapsed.Round(time.Microsecond), extra)
	}
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
