// Command genset generates random task-set files for the other tools,
// using the same seeded generators as the evaluation harness.
//
// Usage:
//
//	genset -u 3.2 [-umin 0.05] [-umax 0.5] [-class general|harmonic|kchains|mixed]
//	       [-k 2] [-heavy 0.4] [-pmin 100] [-pmax 10000] [-menu 20,40,100]
//	       [-seed 1] [-o tasks.json]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/task"
	"repro/internal/taskio"
)

func main() {
	var (
		u     = flag.Float64("u", 2.0, "target total utilization (e.g. M × U_M)")
		umin  = flag.Float64("umin", 0.05, "per-task minimum utilization")
		umax  = flag.Float64("umax", 0.5, "per-task maximum utilization")
		class = flag.String("class", "general", "general, harmonic, kchains, mixed")
		k     = flag.Int("k", 2, "harmonic chain count for -class kchains")
		heavy = flag.Float64("heavy", 0.4, "heavy utilization share for -class mixed")
		pmin  = flag.Int64("pmin", 100, "minimum period (log-uniform)")
		pmax  = flag.Int64("pmax", 10000, "maximum period (log-uniform)")
		menu  = flag.String("menu", "", "comma-separated period menu (overrides pmin/pmax)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("o", "", "output file (default stdout)")
		dmin  = flag.Float64("dmin", 1, "minimum deadline fraction D/T (with -dmax < 1: constrained deadlines)")
		dmax  = flag.Float64("dmax", 1, "maximum deadline fraction D/T")
	)
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "genset: "+format+"\n", args...)
		os.Exit(2)
	}
	if *u <= 0 {
		fail("-u must be positive (got %g)", *u)
	}
	if *umin <= 0 || *umax > 1 || *umin > *umax {
		fail("need 0 < -umin ≤ -umax ≤ 1 (got umin=%g umax=%g)", *umin, *umax)
	}
	if *k < 1 {
		fail("-k must be at least 1 (got %d)", *k)
	}
	if *heavy < 0 || *heavy > 1 {
		fail("-heavy must be in [0,1] (got %g)", *heavy)
	}
	if *pmin < 1 || *pmax < *pmin {
		fail("need 1 ≤ -pmin ≤ -pmax (got pmin=%d pmax=%d)", *pmin, *pmax)
	}
	if *dmin <= 0 || *dmax > 1 || *dmin > *dmax {
		fail("need 0 < -dmin ≤ -dmax ≤ 1 (got dmin=%g dmax=%g)", *dmin, *dmax)
	}

	var pg gen.PeriodGen = gen.LogUniformPeriods{Min: *pmin, Max: *pmax}
	if *menu != "" {
		var values []task.Time
		for _, s := range strings.Split(*menu, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil || v < 1 {
				fail("bad menu entry %q (want a positive integer period)", s)
			}
			values = append(values, v)
		}
		pg = gen.ChoicePeriods{Values: values}
	}

	r := rand.New(rand.NewSource(*seed))
	var ts task.Set
	var err error
	switch *class {
	case "general":
		ts, err = gen.TaskSet(r, gen.Config{TargetU: *u, UMin: *umin, UMax: *umax, Periods: pg})
	case "harmonic":
		ts, err = gen.HarmonicSet(r, gen.HarmonicConfig{TargetU: *u, UMin: *umin, UMax: *umax, Chains: 1})
	case "kchains":
		ts, err = gen.HarmonicSet(r, gen.HarmonicConfig{TargetU: *u, UMin: *umin, UMax: *umax, Chains: *k})
	case "mixed":
		ts, err = gen.MixedSet(r, gen.MixedConfig{
			TargetU: *u, HeavyShare: *heavy,
			HeavyMin: 0.5, HeavyMax: 0.9,
			LightMin: *umin, LightMax: *umax,
			Periods: pg,
		})
	default:
		fmt.Fprintf(os.Stderr, "genset: unknown class %q\n", *class)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genset:", err)
		os.Exit(2)
	}
	if *dmin < 1 || *dmax < 1 {
		ts, err = gen.Constrain(r, ts, *dmin, *dmax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genset:", err)
			os.Exit(2)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genset:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := taskio.Save(w, ts); err != nil {
		fmt.Fprintln(os.Stderr, "genset:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "genset: %d tasks, U(τ)=%.4f\n", len(ts), ts.TotalUtilization())
}
