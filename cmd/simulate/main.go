// Command simulate partitions a task set and executes the result on the
// discrete-event multiprocessor simulator, reporting deadline misses,
// observed worst-case response times (against their RTA bounds) and
// per-processor load.
//
// Usage:
//
//	simulate -set tasks.txt -m 4 [-horizon 1000000] [-algo auto] [-continue]
//	simulate -plan plan.json            # replay a saved plan (partition -o)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/taskio"
)

func main() {
	var (
		setPath  = flag.String("set", "", "task set file (text or JSON)")
		m        = flag.Int("m", 2, "number of processors")
		horizon  = flag.Int64("horizon", 0, "simulation horizon in ticks (0 = hyperperiod, capped)")
		cap      = flag.Int64("cap", 10_000_000, "hyperperiod cap when -horizon is 0")
		algo     = flag.String("algo", "auto", "algorithm: auto, rm-ts, rm-ts-light, spa1, spa2, ff, wf")
		contMiss = flag.Bool("continue", false, "continue past deadline misses and count them all")
		gantt    = flag.Int64("gantt", 0, "render a per-processor timeline of the first N ticks")
		dispOv   = flag.Int64("dispatch-overhead", 0, "context-switch cost in ticks charged per dispatch")
		migOv    = flag.Int64("migration-overhead", 0, "cost in ticks charged per fragment migration")
		planPath = flag.String("plan", "", "replay a saved plan JSON instead of partitioning (-set/-m/-algo ignored)")
	)
	flag.Parse()
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
		os.Exit(2)
	}
	if *m < 1 {
		fail("-m must be at least 1 (got %d)", *m)
	}
	if *horizon < 0 {
		fail("-horizon must be non-negative (got %d); 0 means hyperperiod", *horizon)
	}
	if *cap < 1 {
		fail("-cap must be positive (got %d)", *cap)
	}
	if *gantt < 0 {
		fail("-gantt must be non-negative (got %d)", *gantt)
	}
	if *dispOv < 0 || *migOv < 0 {
		fail("overheads must be non-negative (got dispatch=%d migration=%d)", *dispOv, *migOv)
	}
	if *planPath != "" && *setPath != "" {
		fail("-plan and -set are mutually exclusive")
	}
	if *planPath != "" {
		replayPlan(*planPath, *horizon, *cap, *contMiss, *gantt, *dispOv, *migOv)
		return
	}
	if *setPath == "" {
		fmt.Fprintln(os.Stderr, "simulate: -set or -plan is required")
		flag.Usage()
		os.Exit(2)
	}
	ts, err := taskio.Load(*setPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(2)
	}
	var alg partition.Algorithm
	switch *algo {
	case "auto", "":
	case "rm-ts":
		alg = partition.NewRMTS(nil)
	case "rm-ts-light":
		alg = partition.RMTSLight{}
	case "spa1":
		alg = partition.SPA1{}
	case "spa2":
		alg = partition.SPA2{}
	case "ff":
		alg = partition.FirstFitRTA{}
	case "wf":
		alg = partition.WorstFitRTA{}
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	plan, err := core.Partition(ts, *m, core.Options{Algorithm: alg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: NOT SCHEDULABLE: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("partitioned by %s; simulating...\n\n", plan.AlgorithmName)
	fmt.Print(plan.Assignment())

	rep, err := plan.Simulate(sim.Options{
		Horizon:           task.Time(*horizon),
		HorizonCap:        task.Time(*cap),
		StopOnMiss:        !*contMiss,
		DispatchOverhead:  task.Time(*dispOv),
		MigrationOverhead: task.Time(*migOv),
		RecordTimeline:    *gantt > 0,
		TimelineCap:       task.Time(*gantt),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(2)
	}
	fmt.Printf("\nhorizon: %d ticks   released: %d   completed: %d   preemptions: %d   overhead: %d\n",
		rep.Horizon, rep.Released, rep.Completed, rep.Preemptions, rep.Overhead)
	if g := rep.Gantt(); g != "" {
		fmt.Printf("\ntimeline (first %d ticks, digit/letter = task index, '.' = idle):\n%s", *gantt, g)
	}
	for q, busy := range rep.Busy {
		fmt.Printf("P%d busy %d/%d ticks (%.1f%%)\n", q, busy, rep.Horizon, 100*float64(busy)/float64(rep.Horizon))
	}
	fmt.Println("\nworst observed job response times (vs period):")
	for idx := range plan.Assignment().Set {
		t := plan.Assignment().Set[idx]
		fmt.Printf("  τ%-3d %-10s  R=%d / T=%d\n", idx, t.Name, rep.WorstResponse[idx], t.T)
	}
	if rep.Ok() {
		fmt.Println("\nRESULT: no deadline misses")
	} else {
		fmt.Printf("\nRESULT: %d deadline misses (first: %s)\n", len(rep.Misses), rep.Misses[0])
		os.Exit(1)
	}
}

// replayPlan loads a saved plan and executes it directly.
func replayPlan(path string, horizon, hcap int64, contMiss bool, gantt, dispOv, migOv int64) {
	asg, scheduler, err := taskio.LoadPlan(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(2)
	}
	policy := sim.PolicyFP
	if scheduler == "EDF" {
		policy = sim.PolicyEDF
	}
	fmt.Printf("replaying %s (%s scheduler)\n\n", path, policy)
	fmt.Print(asg)
	rep, err := sim.Simulate(asg, sim.Options{
		Policy:            policy,
		Horizon:           task.Time(horizon),
		HorizonCap:        task.Time(hcap),
		StopOnMiss:        !contMiss,
		DispatchOverhead:  task.Time(dispOv),
		MigrationOverhead: task.Time(migOv),
		RecordTimeline:    gantt > 0,
		TimelineCap:       task.Time(gantt),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(2)
	}
	fmt.Printf("\nhorizon: %d ticks   released: %d   completed: %d   preemptions: %d   overhead: %d\n",
		rep.Horizon, rep.Released, rep.Completed, rep.Preemptions, rep.Overhead)
	if g := rep.Gantt(); g != "" {
		fmt.Print(g)
	}
	if rep.Ok() {
		fmt.Println("RESULT: no deadline misses")
		return
	}
	fmt.Printf("RESULT: %d deadline misses (first: %s)\n", len(rep.Misses), rep.Misses[0])
	os.Exit(1)
}
