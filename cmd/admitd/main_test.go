package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildAdmitd compiles the command under test into dir and returns the
// binary path.
func buildAdmitd(t *testing.T, dir string) string {
	t.Helper()
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	bin := filepath.Join(dir, "admitd-under-test")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// exitCode runs the binary and returns its exit status (-1 on signal death).
func exitCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		return 0, buf.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), buf.String()
	}
	t.Fatalf("run %v: %v", args, err)
	return -1, ""
}

// TestServeCheckAndShutdown is the full daemon lifecycle: boot on a free
// port, publish the address, pass the -check client (which exercises the
// admit → reject → remove → re-admit cycle and a load smoke), then shut
// down gracefully on SIGTERM.
func TestServeCheckAndShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildAdmitd(t, dir)

	addrFile := filepath.Join(dir, "addr")
	accessLog := filepath.Join(dir, "access.jsonl")
	srv := exec.Command(bin, "-listen", "127.0.0.1:0", "-addr-file", addrFile, "-q",
		"-access-log", accessLog, "-slow-ms", "0")
	var srvOut bytes.Buffer
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			addr = strings.TrimSpace(string(raw))
			break
		}
	}
	if addr == "" {
		t.Fatalf("no address published; server output:\n%s", srvOut.String())
	}

	code, out := exitCode(t, bin, "-check", addr, "-check-load", "300")
	if code != 0 {
		t.Fatalf("check failed (exit %d):\n%s\nserver output:\n%s", code, out, srvOut.String())
	}
	if !strings.Contains(out, "check ok:") || !strings.Contains(out, "accepted") {
		t.Errorf("check report malformed: %q", out)
	}

	// The scrape client mode fetches the Prometheus exposition; spot-check a
	// family from each subsystem (RED, gate, readiness).
	code, prom := exitCode(t, bin, "-scrape", addr)
	if code != 0 {
		t.Fatalf("scrape failed (exit %d):\n%s", code, prom)
	}
	for _, want := range []string{
		"# TYPE admit_http_admit_latency_us histogram",
		"# TYPE admit_gate_queue_depth gauge",
		"# TYPE process_ready_state gauge",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("scrape output lacks %q", want)
		}
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("server did not exit cleanly on SIGTERM: %v\n%s", err, srvOut.String())
	}

	// Shutdown flushed the access log; the check traffic must be in it.
	raw, err := os.ReadFile(accessLog)
	if err != nil || len(bytes.TrimSpace(raw)) == 0 {
		t.Fatalf("access log missing or empty after shutdown: %v", err)
	}
	if !bytes.Contains(raw, []byte(`"route":"admit"`)) {
		t.Errorf("access log lacks admit-route records:\n%s", raw)
	}
}

// TestExitCodes pins the usage/failure contract: 2 for usage errors, 1 for
// a failed check (nothing listening), 0 only for a passed check.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildAdmitd(t, dir)

	if code, _ := exitCode(t, bin, "-nope"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _ := exitCode(t, bin, "stray"); code != 2 {
		t.Errorf("stray argument: exit %d, want 2", code)
	}
	if code, _ := exitCode(t, bin, "-check", "127.0.0.1:9", "-check-load", "0"); code != 2 {
		t.Errorf("bad -check-load: exit %d, want 2", code)
	}
	// Port 9 (discard) is almost certainly refusing connections; a failed
	// check is exit 1, distinct from usage errors.
	if code, _ := exitCode(t, bin, "-check", "127.0.0.1:9"); code != 1 {
		t.Errorf("unreachable check: exit %d, want 1", code)
	}
	// An unbindable listen address is an operational error at startup.
	if code, _ := exitCode(t, bin, "-listen", "256.256.256.256:1"); code != 2 {
		t.Errorf("unbindable listen: exit %d, want 2", code)
	}
}

// startAdmitd boots the daemon with the given extra flags and waits for it
// to publish its address (which, with -data, also means recovery finished —
// the address file is written before recovery but the churn client checks
// below go through the ready guard).
func startAdmitd(t *testing.T, bin, dir string, extra ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	addrFile := filepath.Join(dir, "addr")
	os.Remove(addrFile)
	args := append([]string{"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-q"}, extra...)
	srv := exec.Command(bin, args...)
	var out bytes.Buffer
	srv.Stdout, srv.Stderr = &out, &out
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			addr = strings.TrimSpace(string(raw))
			break
		}
	}
	if addr == "" {
		srv.Process.Kill()
		t.Fatalf("no address published; server output:\n%s", out.String())
	}
	return srv, addr, &out
}

// canonDigest runs the churn client in digest-only mode and returns the
// "canon <hex>" line. It retries briefly: right after a restart the ready
// guard answers 503 while journal replay runs.
func canonDigest(t *testing.T, bin, addr string) string {
	t.Helper()
	var lastOut string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(50 * time.Millisecond) {
		code, out := exitCode(t, bin, "-churn", addr, "-churn-ops", "0")
		lastOut = out
		if code == 0 {
			for _, line := range strings.Split(out, "\n") {
				if strings.HasPrefix(line, "canon ") {
					return strings.TrimSpace(line)
				}
			}
			t.Fatalf("digest run printed no canon line: %q", out)
		}
	}
	t.Fatalf("digest never succeeded: %q", lastOut)
	return ""
}

// TestCrashRecoveryTorture is the process-level crash test: churn a
// journaled daemon, SIGKILL it (no final snapshot, no flush courtesy),
// restart it on the same data directory, and require the recovered
// canonical state to be digest-identical. A second round kills the daemon
// *mid-churn* and requires the restart to recover cleanly — the journal's
// torn-tail repair and replay integrity checks run for real.
func TestCrashRecoveryTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildAdmitd(t, dir)
	data := filepath.Join(dir, "data")

	// Round 1: deterministic churn to completion, digest, SIGKILL, restart,
	// digest again. fsync=always so every acknowledged op is durable.
	srv, addr, out := startAdmitd(t, bin, dir, "-data", data, "-fsync", "always")
	if code, cout := exitCode(t, bin, "-churn", addr, "-churn-ops", "400", "-churn-seed", "42"); code != 0 {
		srv.Process.Kill()
		t.Fatalf("churn failed (exit %d):\n%s\nserver:\n%s", code, cout, out.String())
	}
	before := canonDigest(t, bin, addr)
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()

	srv, addr, out = startAdmitd(t, bin, dir, "-data", data, "-fsync", "always")
	after := canonDigest(t, bin, addr)
	if before != after {
		t.Fatalf("state diverged across SIGKILL/recovery:\n before %s\n after  %s\nserver:\n%s", before, after, out.String())
	}

	// Round 2: SIGKILL mid-churn. The client dies with the connection; all
	// that is required is that the restart recovers without refusing (replay
	// re-verifies every record) and still serves the API.
	churn := exec.Command(bin, "-churn", addr, "-churn-ops", "100000", "-churn-seed", "7", "-churn-prefix", "torture")
	churn.Stdout, churn.Stderr = io.Discard, io.Discard
	if err := churn.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let a few thousand ops land
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()
	churn.Wait()

	srv, addr, out = startAdmitd(t, bin, dir, "-data", data, "-fsync", "always")
	canonDigest(t, bin, addr) // recovered daemon serves canonical state again
	if code, cout := exitCode(t, bin, "-check", addr, "-check-load", "50"); code != 0 {
		srv.Process.Kill()
		t.Fatalf("post-recovery check failed (exit %d):\n%s\nserver:\n%s", code, cout, out.String())
	}
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("clean shutdown after recovery: %v\n%s", err, out.String())
	}
}

// TestDurabilityFlagValidation pins exit 2 for every malformed durability,
// gate, or timeout flag — misconfiguration must die loudly at startup, not
// surface as runtime behavior.
func TestDurabilityFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildAdmitd(t, dir)
	cases := [][]string{
		{"-fsync", "sometimes"},
		{"-fsync-interval", "0s"},
		{"-fsync-interval", "-1ms"},
		{"-gate-concurrency", "-1"},
		{"-gate-queue", "-2"},
		{"-request-timeout", "-1s"},
		{"-retry-after", "-1s"},
		{"-read-header-timeout", "-1s"},
		{"-read-timeout", "-1s"},
		{"-write-timeout", "-1s"},
		{"-idle-timeout", "-1s"},
		{"-check", "127.0.0.1:9", "-churn", "127.0.0.1:9"},
		{"-check", "127.0.0.1:9", "-scrape", "127.0.0.1:9"},
		{"-churn", "127.0.0.1:9", "-churn-ops", "-1"},
		{"-access-sample", "0"},
		{"-slow-ms", "-1"},
		{"-trace-ring", "-1"},
		{"-access-log", filepath.Join(dir, "no-such-dir", "access.jsonl")},
	}
	for _, args := range cases {
		if code, out := exitCode(t, bin, args...); code != 2 {
			t.Errorf("%v: exit %d, want 2\n%s", args, code, out)
		}
	}
}
