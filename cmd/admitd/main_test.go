package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildAdmitd compiles the command under test into dir and returns the
// binary path.
func buildAdmitd(t *testing.T, dir string) string {
	t.Helper()
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	bin := filepath.Join(dir, "admitd-under-test")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// exitCode runs the binary and returns its exit status (-1 on signal death).
func exitCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		return 0, buf.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), buf.String()
	}
	t.Fatalf("run %v: %v", args, err)
	return -1, ""
}

// TestServeCheckAndShutdown is the full daemon lifecycle: boot on a free
// port, publish the address, pass the -check client (which exercises the
// admit → reject → remove → re-admit cycle and a load smoke), then shut
// down gracefully on SIGTERM.
func TestServeCheckAndShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildAdmitd(t, dir)

	addrFile := filepath.Join(dir, "addr")
	srv := exec.Command(bin, "-listen", "127.0.0.1:0", "-addr-file", addrFile, "-q")
	var srvOut bytes.Buffer
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			addr = strings.TrimSpace(string(raw))
			break
		}
	}
	if addr == "" {
		t.Fatalf("no address published; server output:\n%s", srvOut.String())
	}

	code, out := exitCode(t, bin, "-check", addr, "-check-load", "300")
	if code != 0 {
		t.Fatalf("check failed (exit %d):\n%s\nserver output:\n%s", code, out, srvOut.String())
	}
	if !strings.Contains(out, "check ok:") || !strings.Contains(out, "accepted") {
		t.Errorf("check report malformed: %q", out)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("server did not exit cleanly on SIGTERM: %v\n%s", err, srvOut.String())
	}
}

// TestExitCodes pins the usage/failure contract: 2 for usage errors, 1 for
// a failed check (nothing listening), 0 only for a passed check.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildAdmitd(t, dir)

	if code, _ := exitCode(t, bin, "-nope"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _ := exitCode(t, bin, "stray"); code != 2 {
		t.Errorf("stray argument: exit %d, want 2", code)
	}
	if code, _ := exitCode(t, bin, "-check", "127.0.0.1:9", "-check-load", "0"); code != 2 {
		t.Errorf("bad -check-load: exit %d, want 2", code)
	}
	// Port 9 (discard) is almost certainly refusing connections; a failed
	// check is exit 1, distinct from usage errors.
	if code, _ := exitCode(t, bin, "-check", "127.0.0.1:9"); code != 1 {
		t.Errorf("unreachable check: exit %d, want 1", code)
	}
	// An unbindable listen address is an operational error at startup.
	if code, _ := exitCode(t, bin, "-listen", "256.256.256.256:1"); code != 2 {
		t.Errorf("unbindable listen: exit %d, want 2", code)
	}
}
