// Command admitd serves the online admission-control API (internal/admit)
// next to the observability surface (internal/obs) on one listener.
//
// Usage:
//
//	admitd [-listen host:port] [-addr-file path] [-shards n]
//	       [-data dir] [-fsync always|batch|off] [-fsync-interval d] [-snapshot-every n]
//	       [-gate] [-gate-concurrency n] [-gate-queue n] [-request-timeout d] [-retry-after d]
//	       [-read-header-timeout d] [-read-timeout d] [-write-timeout d] [-idle-timeout d]
//	       [-access-log path] [-access-sample n] [-slow-ms n] [-trace-ring n]
//	admitd -check host:port [-check-load n]
//	admitd -churn host:port [-churn-ops n] [-churn-seed n] [-churn-prefix name]
//	admitd -scrape host:port
//
// Server mode binds -listen (:0 picks a free port; -addr-file publishes
// the bound address for scripts) and serves until SIGINT or SIGTERM, then
// shuts down gracefully — in-flight admissions get complete responses.
// With -data, every mutation is journaled to a write-ahead log and folded
// into atomic snapshots; on startup the directory is recovered (snapshot +
// journal replay) before traffic is admitted, and /readyz reports
// "recovering" until the replay completes. A clean shutdown writes a final
// snapshot; after a crash (SIGKILL, power loss) the next start rebuilds
// the exact acknowledged state from the journal.
//
//	POST   /v1/clusters               create a virtual cluster
//	GET    /v1/clusters               list clusters
//	GET    /v1/clusters/{name}        cluster status + stats
//	DELETE /v1/clusters/{name}        delete a cluster
//	POST   /v1/clusters/{name}/admit  admit one task (200 either verdict)
//	POST   /v1/clusters/{name}/remove remove a resident task by handle
//	GET    /v1/canon                  canonical registry state (hex)
//	GET    /debug/requests            recent slow/errored requests (ring)
//	GET    /metrics /progress /healthz /readyz /debug/pprof/  (obs routes)
//
// Observability (DESIGN.md §15): every request gets an X-Request-Id
// (accepted inbound or generated) echoed on every response and stamped into
// journal records; /metrics serves the Prometheus text format under
// `Accept: text/plain` (JSON and the aligned human-readable text remain);
// -access-log writes a sampled JSONL access log; -slow-ms and -trace-ring
// size the GET /debug/requests ring of recent slow or errored requests.
//
// Check mode is a self-contained smoke client for CI: against a running
// admitd it verifies /healthz, the "/" index, the full admit → reject →
// remove → re-admit cycle with a typed rejection, and then drives a
// sustained admit/remove load, reporting the achieved admissions/sec.
//
// Churn mode is the crash-recovery smoke's client: it drives a seeded
// random create/admit/remove sequence (deterministic for a given
// -churn-seed) and prints a digest of the server's canonical state;
// -churn-ops 0 skips the churn and just prints the digest, so a
// SIGKILL/restart cycle can be verified by comparing two digest lines.
// Exit status: 0 check passed, 1 check failed, 2 usage.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("admitd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:8080", "serve the admission API and status routes at this address (host:port; :0 picks a free port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening (for -listen :0 in scripts)")
		shards   = fs.Int("shards", 0, "cluster-registry lock stripes (0 = default)")

		dataDir    = fs.String("data", "", "durability directory: journal every mutation here and recover it on startup (empty = in-memory only)")
		fsyncMode  = fs.String("fsync", "batch", "journal fsync policy: always (sync per op), batch (group commit), off")
		fsyncEvery = fs.Duration("fsync-interval", 5*time.Millisecond, "group-commit interval under -fsync batch")
		snapEvery  = fs.Int("snapshot-every", 4096, "fold the journal into a snapshot after this many records (negative disables periodic snapshots)")

		gateOn     = fs.Bool("gate", true, "guard the admit/remove endpoints with the concurrency gate")
		gateConc   = fs.Int("gate-concurrency", 0, "gate execution slots (0 = 2×GOMAXPROCS)")
		gateQueue  = fs.Int("gate-queue", 0, "bounded wait queue before the gate sheds with 429 (0 = 4×slots)")
		reqTimeout = fs.Duration("request-timeout", time.Second, "per-request deadline through queue wait and admission (0 disables)")
		retryAfter = fs.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
		readHeadTO = fs.Duration("read-header-timeout", 5*time.Second, "server read-header timeout (Slowloris guard; 0 disables)")
		readTO     = fs.Duration("read-timeout", 30*time.Second, "server whole-request read timeout (0 disables)")
		writeTO    = fs.Duration("write-timeout", 0, "server response write timeout (0 disables; pprof profile streams need it off)")
		idleTO     = fs.Duration("idle-timeout", 2*time.Minute, "server keep-alive idle timeout (0 disables)")

		accessLog    = fs.String("access-log", "", "write a JSONL access log to this path (empty = off)")
		accessSample = fs.Int("access-sample", 1, "log every Nth successful request (errors always logged)")
		slowMS       = fs.Int("slow-ms", 100, "requests at least this slow enter the /debug/requests ring (0 = errors only)")
		traceRing    = fs.Int("trace-ring", 256, "capacity of the /debug/requests ring (0 disables it)")

		check = fs.String("check", "", "client mode: run the admission smoke against the admitd at this address and exit")
		load  = fs.Int("check-load", 2000, "admissions driven by the -check load smoke")

		scrape = fs.String("scrape", "", "client mode: fetch /metrics in the Prometheus text format from the admitd at this address, print it, and exit")

		churn       = fs.String("churn", "", "client mode: drive a seeded random churn against the admitd at this address, print a canonical-state digest, and exit")
		churnOps    = fs.Int("churn-ops", 500, "operations driven by -churn (0 = just print the digest)")
		churnSeed   = fs.Int64("churn-seed", 1, "seed of the -churn operation sequence")
		churnPrefix = fs.String("churn-prefix", "churn", "cluster-name prefix used by -churn")

		quiet = fs.Bool("q", false, "suppress informational output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "admitd: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "admitd: "+format+"\n", args...)
		return 2
	}
	clientModes := 0
	for _, m := range []string{*check, *churn, *scrape} {
		if m != "" {
			clientModes++
		}
	}
	if clientModes > 1 {
		return usage("-check, -churn and -scrape are mutually exclusive")
	}
	if *check != "" {
		if *load <= 0 {
			return usage("-check-load must be positive (got %d)", *load)
		}
		return runCheck(*check, *load, stdout, stderr)
	}
	if *scrape != "" {
		return runScrape(*scrape, stdout, stderr)
	}
	if *churn != "" {
		if *churnOps < 0 {
			return usage("-churn-ops must be non-negative (got %d)", *churnOps)
		}
		return runChurn(*churn, *churnOps, *churnSeed, *churnPrefix, stdout, stderr)
	}
	fsyncPolicy, err := admit.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return usage("%v", err)
	}
	if *fsyncEvery <= 0 {
		return usage("-fsync-interval must be positive (got %v)", *fsyncEvery)
	}
	if *gateConc < 0 || *gateQueue < 0 {
		return usage("-gate-concurrency and -gate-queue must be non-negative")
	}
	for _, to := range []struct {
		name string
		v    time.Duration
	}{
		{"-request-timeout", *reqTimeout}, {"-retry-after", *retryAfter},
		{"-read-header-timeout", *readHeadTO}, {"-read-timeout", *readTO},
		{"-write-timeout", *writeTO}, {"-idle-timeout", *idleTO},
	} {
		if to.v < 0 {
			return usage("%s must be non-negative (got %v)", to.name, to.v)
		}
	}
	if *accessSample < 1 {
		return usage("-access-sample must be at least 1 (got %d)", *accessSample)
	}
	if *slowMS < 0 {
		return usage("-slow-ms must be non-negative (got %d)", *slowMS)
	}
	if *traceRing < 0 {
		return usage("-trace-ring must be non-negative (got %d)", *traceRing)
	}

	// The status surface is part of the daemon's contract, so metrics are
	// always on (in the batch harness they are opt-in to keep hot loops
	// untouched; a service that serves /metrics should fill it).
	obs.SetEnabled(true)
	obs.SetReadiness(obs.ReadyStarting)
	obs.RegisterReadinessGauge(nil)
	svc := admit.NewService(*shards)
	if *gateOn {
		svc.SetGate(admit.NewGate(admit.GateConfig{
			MaxConcurrent: *gateConc,
			MaxQueue:      *gateQueue,
			Timeout:       disabledIfZero(*reqTimeout),
			RetryAfter:    *retryAfter,
		}))
	}
	svc.RegisterMetrics(nil)

	// Per-request sinks: slow/errored-request ring and the optional JSONL
	// access log (the tracing layer itself — request IDs and RED metrics —
	// is always on).
	var ring *obs.RequestRing
	if *traceRing > 0 {
		ring = obs.NewRequestRing(*traceRing)
	}
	var alog *obs.AccessLog
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return usage("open -access-log: %v", err)
		}
		alog = obs.NewAccessLog(f, *accessSample)
	}
	svc.SetTracing(admit.TraceConfig{
		Ring:          ring,
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		AccessLog:     alog,
	})

	// Bind before recovering, guarding the API behind readiness: a balancer
	// (or curl) sees 503 "recovering" from /readyz and the /v1 routes while
	// journal replay runs, instead of connection refused or partial state.
	routes := svc.Routes()
	for i := range routes {
		routes[i].Handler = readyGuard(routes[i].Handler)
	}
	routes = append(routes, obs.Route{Pattern: "GET /debug/requests", Handler: ring.Handler()})
	srv, err := obs.ServeOpts(*listen, obs.Default, obs.ServeOptions{
		ReadHeaderTimeout: disabledIfZero(*readHeadTO),
		ReadTimeout:       disabledIfZero(*readTO),
		WriteTimeout:      disabledIfZero(*writeTO),
		IdleTimeout:       disabledIfZero(*idleTO),
	}, routes...)
	if err != nil {
		fmt.Fprintf(stderr, "admitd: %v\n", err)
		return 2
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "admitd: write -addr-file: %v\n", err)
			srv.Close()
			return 2
		}
	}

	if *dataDir != "" {
		obs.SetReadiness(obs.ReadyRecovering)
		rs, err := svc.AttachJournal(admit.JournalConfig{
			Dir:           *dataDir,
			Fsync:         fsyncPolicy,
			FsyncInterval: *fsyncEvery,
			SnapshotEvery: *snapEvery,
		})
		if err != nil {
			// Refusing to serve beats serving silently wrong state: a
			// corrupt journal is an operator decision, not a default.
			fmt.Fprintf(stderr, "admitd: recovery failed: %v\n", err)
			srv.Close()
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stderr, "admitd: recovered %d clusters (%d residents), replayed %d journal records, %d torn tails repaired\n",
				rs.Clusters, rs.Residents, rs.Replayed, rs.TornTails)
		}
	}
	obs.SetReadiness(obs.ReadyServing)
	if !*quiet {
		fmt.Fprintf(stderr, "admitd: serving on %s\n", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	obs.SetReadiness(obs.ReadyDraining)
	if !*quiet {
		fmt.Fprintf(stderr, "admitd: %v, shutting down\n", s)
	}
	code := 0
	if err := srv.Close(); err != nil {
		fmt.Fprintf(stderr, "admitd: shutdown: %v\n", err)
		code = 1
	}
	// Final snapshot: a clean shutdown leaves the state durable at rest and
	// the journal empty, so the next start restores Status byte-identically
	// without replay.
	if err := svc.Close(); err != nil {
		fmt.Fprintf(stderr, "admitd: close journal: %v\n", err)
		code = 1
	}
	// The access log closes last: the flushes above can still record.
	if err := alog.Close(); err != nil {
		fmt.Fprintf(stderr, "admitd: close access log: %v\n", err)
		code = 1
	}
	return code
}

// disabledIfZero maps the flag vocabulary (0 = off) onto the option
// vocabulary (0 = default, negative = off).
func disabledIfZero(d time.Duration) time.Duration {
	if d == 0 {
		return -1
	}
	return d
}

// readyGuard holds the admission API behind the readiness state: during
// startup and journal replay the durable state is not yet consistent, so
// the API answers 503 (with Retry-After) instead of serving reads of
// partial state or mutations that AttachJournal would then collide with.
// The guard short-circuits before the traced routes run, so it resolves and
// echoes the request ID itself — even "not ready yet" is attributable.
func readyGuard(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch obs.CurrentReadiness() {
		case obs.ReadyStarting, obs.ReadyRecovering:
			admit.EnsureRequestID(w, r)
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"service %s"}`, obs.CurrentReadiness())
			return
		}
		h.ServeHTTP(w, r)
	})
}

// checkClient is the -check mode's tiny JSON client.
type checkClient struct {
	base string
	hc   *http.Client
}

// do issues one request and decodes any JSON body into a generic map.
func (c *checkClient) do(method, path, body string) (int, map[string]any, error) {
	code, _, raw, err := c.doRaw(method, path, body, nil)
	if err != nil {
		return code, nil, err
	}
	var v map[string]any
	if len(raw) > 0 && json.Unmarshal(raw, &v) != nil {
		v = map[string]any{"_raw": string(raw)}
	}
	return code, v, nil
}

// doRaw issues one request with optional extra headers and returns the
// response headers and raw body — the -check metric/tracing probes need
// both.
func (c *checkClient) doRaw(method, path, body string, hdr map[string]string) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw, err
}

// runCheck drives the smoke sequence against a live admitd: health, index,
// the admit → reject → remove → re-admit cycle, and a sustained load run.
func runCheck(addr string, load int, stdout, stderr io.Writer) int {
	c := &checkClient{base: "http://" + addr, hc: &http.Client{Timeout: 10 * time.Second}}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "admitd check: "+format+"\n", args...)
		return 1
	}

	// Health, readiness, and the endpoint index (must name every mounted
	// route family).
	code, v, err := c.do("GET", "/healthz", "")
	if err != nil || code != 200 || v["ok"] != true {
		return fail("/healthz: code %d v %v err %v", code, v, err)
	}
	code, v, err = c.do("GET", "/readyz", "")
	if err != nil || code != 200 || v["ready"] != true {
		return fail("/readyz: code %d v %v err %v", code, v, err)
	}
	code, v, err = c.do("GET", "/", "")
	if err != nil || code != 200 {
		return fail("/: code %d err %v", code, err)
	}
	index, _ := v["_raw"].(string)
	for _, want := range []string{"/healthz", "/readyz", "/metrics", "/v1/clusters", "/v1/clusters/{name}/admit"} {
		if !strings.Contains(index, want) {
			return fail("/ index omits %s: %q", want, index)
		}
	}

	// Admission cycle on a single-processor cluster: two half-utilization
	// tasks fill it, a third is an analyzed rejection, removing one admits
	// the third on retry.
	const cluster = "smoke"
	defer c.do("DELETE", "/v1/clusters/"+cluster, "")
	code, v, err = c.do("POST", "/v1/clusters", fmt.Sprintf(`{"name":%q,"m":1}`, cluster))
	if err != nil || code != 201 {
		return fail("create: code %d v %v err %v", code, v, err)
	}
	admit := func(body string) (map[string]any, error) {
		code, v, err := c.do("POST", "/v1/clusters/"+cluster+"/admit", body)
		if err == nil && code != 200 {
			err = fmt.Errorf("code %d: %v", code, v)
		}
		return v, err
	}
	first, err := admit(`{"name":"a","c":5,"t":10}`)
	if err != nil || first["accepted"] != true {
		return fail("admit a: %v err %v", first, err)
	}
	if v, err = admit(`{"name":"b","c":4,"t":10}`); err != nil || v["accepted"] != true {
		return fail("admit b: %v err %v", v, err)
	}
	rej, err := admit(`{"name":"c","c":5,"t":10}`)
	if err != nil || rej["accepted"] == true {
		return fail("overload admit: %v err %v", rej, err)
	}
	if rej["cause"] != "rta-deadline-miss" || rej["evidence"] == nil {
		return fail("rejection untyped: %v", rej)
	}
	handle := int64(first["handle"].(float64))
	code, v, err = c.do("POST", "/v1/clusters/"+cluster+"/remove", fmt.Sprintf(`{"handle":%d}`, handle))
	if err != nil || code != 200 || v["removed"] != true {
		return fail("remove: code %d v %v err %v", code, v, err)
	}
	if v, err = admit(`{"name":"c","c":5,"t":10}`); err != nil || v["accepted"] != true {
		return fail("re-admit after remove: %v err %v", v, err)
	}

	// Load smoke: sustained admit/remove churn against a wider cluster.
	const loadCluster = "smoke-load"
	defer c.do("DELETE", "/v1/clusters/"+loadCluster, "")
	code, v, err = c.do("POST", "/v1/clusters", fmt.Sprintf(`{"name":%q,"m":2}`, loadCluster))
	if err != nil || code != 201 {
		return fail("create load cluster: code %d v %v err %v", code, v, err)
	}
	// Offered load (mean utilization ≈ 0.11 per task, one removal per three
	// admissions) exceeds the two processors in steady state, so the run
	// exercises acceptances, analyzed rejections, and removal churn.
	var handles []int64
	accepted, rejected := 0, 0
	start := time.Now()
	for i := 0; i < load; i++ {
		body := fmt.Sprintf(`{"c":%d,"t":%d}`, 1+i%5, 10+(i%7)*10)
		code, v, err := c.do("POST", "/v1/clusters/"+loadCluster+"/admit", body)
		if err != nil || code != 200 {
			return fail("load admit %d: code %d err %v", i, code, err)
		}
		if v["accepted"] == true {
			accepted++
			handles = append(handles, int64(v["handle"].(float64)))
		} else {
			rejected++
		}
		if len(handles) > 0 && i%3 == 2 {
			h := handles[0]
			handles = handles[1:]
			if code, v, err := c.do("POST", "/v1/clusters/"+loadCluster+"/remove",
				fmt.Sprintf(`{"handle":%d}`, h)); err != nil || code != 200 {
				return fail("load remove: code %d v %v err %v", code, v, err)
			}
		}
	}
	elapsed := time.Since(start)
	if accepted == 0 || rejected == 0 {
		return fail("load smoke not exercising both verdicts: %d accepted, %d rejected", accepted, rejected)
	}

	// Observability probes (run after the load smoke so every metric family
	// has observations to expose).
	//
	// Request tracing: an ID is minted when absent, echoed verbatim when
	// supplied, and present even on error responses.
	code, hdr, _, err := c.doRaw("GET", "/v1/clusters", "", nil)
	if err != nil || code != 200 {
		return fail("trace probe list: code %d err %v", code, err)
	}
	if hdr.Get("X-Request-Id") == "" {
		return fail("no generated X-Request-Id on a traced response")
	}
	code, hdr, _, err = c.doRaw("GET", "/v1/clusters", "", map[string]string{"X-Request-Id": "check-echo-1"})
	if err != nil || code != 200 || hdr.Get("X-Request-Id") != "check-echo-1" {
		return fail("X-Request-Id not echoed: code %d got %q err %v", code, hdr.Get("X-Request-Id"), err)
	}
	code, hdr, _, err = c.doRaw("GET", "/v1/clusters/no-such-cluster", "", map[string]string{"X-Request-Id": "check-echo-404"})
	if err != nil || code != 404 || hdr.Get("X-Request-Id") != "check-echo-404" {
		return fail("X-Request-Id missing on error path: code %d got %q err %v", code, hdr.Get("X-Request-Id"), err)
	}

	// /metrics, JSON form: schema-versioned export carrying the admit
	// counter families.
	code, _, raw, err := c.doRaw("GET", "/metrics", "", map[string]string{"Accept": "application/json"})
	if err != nil || code != 200 {
		return fail("/metrics json: code %d err %v", code, err)
	}
	var snap struct {
		Schema   int `json:"schema"`
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"gauges"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fail("/metrics json unparseable: %v", err)
	}
	if snap.Schema != 1 {
		return fail("/metrics json schema %d, want 1", snap.Schema)
	}
	counters := make(map[string]int64)
	for _, cv := range snap.Counters {
		counters[cv.Name] = cv.Value
	}
	if counters["admit.requests"] == 0 || counters["admit.http.admit.requests"] == 0 {
		return fail("/metrics json missing admit RED counters: %v", counters)
	}
	gauges := make(map[string]bool)
	for _, gv := range snap.Gauges {
		gauges[gv.Name] = true
	}
	for _, want := range []string{"admit.gate.queue_depth", "admit.clusters", "process.ready_state"} {
		if !gauges[want] {
			return fail("/metrics json missing gauge %s", want)
		}
	}

	// /metrics, Prometheus form: the grammar must validate and the RED and
	// durability families must be present (registered families expose even
	// at count 0, so this holds journaled or not).
	code, _, raw, err = c.doRaw("GET", "/metrics", "", map[string]string{"Accept": "text/plain"})
	if err != nil || code != 200 {
		return fail("/metrics prometheus: code %d err %v", code, err)
	}
	text := string(raw)
	if _, err := obs.ValidatePrometheusText(strings.NewReader(text)); err != nil {
		return fail("/metrics prometheus grammar: %v", err)
	}
	for _, fam := range []string{
		"# TYPE admit_http_admit_latency_us histogram",
		"# TYPE admit_journal_fsync_us histogram",
		"# TYPE admit_gate_queue_depth gauge",
		"# TYPE admit_requests counter",
		"# TYPE process_ready_state gauge",
	} {
		if !strings.Contains(text, fam) {
			return fail("/metrics prometheus missing family line %q", fam)
		}
	}

	// /debug/requests: the ring answers (possibly empty — the smoke should
	// not have been slow) with its schema fields.
	code, v, err = c.do("GET", "/debug/requests", "")
	if err != nil || code != 200 {
		return fail("/debug/requests: code %d err %v", code, err)
	}
	if _, ok := v["requests"]; !ok {
		return fail("/debug/requests body missing requests field: %v", v)
	}

	fmt.Fprintf(stdout, "check ok: %d admissions in %v (%.0f/sec over HTTP), %d accepted, %d rejected\n",
		load, elapsed.Round(time.Millisecond), float64(load)/elapsed.Seconds(), accepted, rejected)
	return 0
}

// runScrape fetches /metrics in the Prometheus text format and prints it —
// a curl-free scrape for scripts (ci.sh pipes it into the grammar lint).
func runScrape(addr string, stdout, stderr io.Writer) int {
	c := &checkClient{base: "http://" + addr, hc: &http.Client{Timeout: 10 * time.Second}}
	code, _, raw, err := c.doRaw("GET", "/metrics", "", map[string]string{"Accept": "text/plain"})
	if err != nil || code != 200 {
		fmt.Fprintf(stderr, "admitd scrape: code %d err %v\n", code, err)
		return 1
	}
	stdout.Write(raw)
	return 0
}

// runChurn drives a seeded random create/admit/remove sequence and prints
// a sha256 digest of the server's canonical registry state. The sequence
// is deterministic in (seed, ops), and admission itself is deterministic
// in (state, candidate), so: churn against a journaled server, SIGKILL it,
// restart it, run -churn-ops 0, and the two digest lines must match —
// that comparison is ci.sh's crash-recovery smoke.
func runChurn(addr string, ops int, seed int64, prefix string, stdout, stderr io.Writer) int {
	c := &checkClient{base: "http://" + addr, hc: &http.Client{Timeout: 10 * time.Second}}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "admitd churn: "+format+"\n", args...)
		return 1
	}
	type placed struct {
		cluster string
		handle  int64
	}
	clusters := []string{prefix + "-0", prefix + "-1"}
	if ops > 0 {
		for i, name := range clusters {
			code, v, err := c.do("POST", "/v1/clusters", fmt.Sprintf(`{"name":%q,"m":%d}`, name, 1+i))
			if err != nil || (code != 201 && code != 409) {
				return fail("create %s: code %d v %v err %v", name, code, v, err)
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var resident []placed
	accepted, rejected, removed := 0, 0, 0
	for i := 0; i < ops; i++ {
		if len(resident) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(resident))
			p := resident[k]
			resident = append(resident[:k], resident[k+1:]...)
			code, v, err := c.do("POST", "/v1/clusters/"+p.cluster+"/remove",
				fmt.Sprintf(`{"handle":%d}`, p.handle))
			if err != nil || code != 200 {
				return fail("remove op %d: code %d v %v err %v", i, code, v, err)
			}
			removed++
			continue
		}
		cl := clusters[rng.Intn(len(clusters))]
		body := fmt.Sprintf(`{"name":"t%d","c":%d,"t":%d}`, i, 1+rng.Intn(5), 10+rng.Intn(7)*10)
		code, v, err := c.do("POST", "/v1/clusters/"+cl+"/admit", body)
		if err != nil || code != 200 {
			return fail("admit op %d: code %d v %v err %v", i, code, v, err)
		}
		if v["accepted"] == true {
			accepted++
			resident = append(resident, placed{cl, int64(v["handle"].(float64))})
		} else {
			rejected++
		}
	}
	code, v, err := c.do("GET", "/v1/canon", "")
	if err != nil || code != 200 {
		return fail("/v1/canon: code %d err %v", code, err)
	}
	canon, _ := v["canon"].(string)
	sum := sha256.Sum256([]byte(canon))
	fmt.Fprintf(stdout, "canon %x\n", sum)
	if ops > 0 {
		fmt.Fprintf(stderr, "churn: %d ops (%d accepted, %d rejected, %d removed), %d resident\n",
			ops, accepted, rejected, removed, len(resident))
	}
	return 0
}
