// Command admitd serves the online admission-control API (internal/admit)
// next to the observability surface (internal/obs) on one listener.
//
// Usage:
//
//	admitd [-listen host:port] [-addr-file path] [-shards n]
//	admitd -check host:port [-check-load n]
//
// Server mode binds -listen (:0 picks a free port; -addr-file publishes
// the bound address for scripts) and serves until SIGINT or SIGTERM, then
// shuts down gracefully — in-flight admissions get complete responses.
//
//	POST   /v1/clusters               create a virtual cluster
//	GET    /v1/clusters               list clusters
//	GET    /v1/clusters/{name}        cluster status + stats
//	DELETE /v1/clusters/{name}        delete a cluster
//	POST   /v1/clusters/{name}/admit  admit one task (200 either verdict)
//	POST   /v1/clusters/{name}/remove remove a resident task by handle
//	GET    /metrics /progress /healthz /debug/pprof/  (obs status routes)
//
// Check mode is a self-contained smoke client for CI: against a running
// admitd it verifies /healthz, the "/" index, the full admit → reject →
// remove → re-admit cycle with a typed rejection, and then drives a
// sustained admit/remove load, reporting the achieved admissions/sec.
// Exit status: 0 check passed, 1 check failed, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("admitd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:8080", "serve the admission API and status routes at this address (host:port; :0 picks a free port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening (for -listen :0 in scripts)")
		shards   = fs.Int("shards", 0, "cluster-registry lock stripes (0 = default)")
		check    = fs.String("check", "", "client mode: run the admission smoke against the admitd at this address and exit")
		load     = fs.Int("check-load", 2000, "admissions driven by the -check load smoke")
		quiet    = fs.Bool("q", false, "suppress informational output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "admitd: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *check != "" {
		if *load <= 0 {
			fmt.Fprintf(stderr, "admitd: -check-load must be positive (got %d)\n", *load)
			return 2
		}
		return runCheck(*check, *load, stdout, stderr)
	}

	// The status surface is part of the daemon's contract, so metrics are
	// always on (in the batch harness they are opt-in to keep hot loops
	// untouched; a service that serves /metrics should fill it).
	obs.SetEnabled(true)
	svc := admit.NewService(*shards)
	srv, err := obs.ServeWith(*listen, obs.Default, svc.Routes()...)
	if err != nil {
		fmt.Fprintf(stderr, "admitd: %v\n", err)
		return 2
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "admitd: write -addr-file: %v\n", err)
			srv.Close()
			return 2
		}
	}
	if !*quiet {
		fmt.Fprintf(stderr, "admitd: serving on %s\n", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	if !*quiet {
		fmt.Fprintf(stderr, "admitd: %v, shutting down\n", s)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(stderr, "admitd: shutdown: %v\n", err)
		return 1
	}
	return 0
}

// checkClient is the -check mode's tiny JSON client.
type checkClient struct {
	base string
	hc   *http.Client
}

// do issues one request and decodes any JSON body into a generic map.
func (c *checkClient) do(method, path, body string) (int, map[string]any, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	var v map[string]any
	if len(raw) > 0 && json.Unmarshal(raw, &v) != nil {
		v = map[string]any{"_raw": string(raw)}
	}
	return resp.StatusCode, v, nil
}

// runCheck drives the smoke sequence against a live admitd: health, index,
// the admit → reject → remove → re-admit cycle, and a sustained load run.
func runCheck(addr string, load int, stdout, stderr io.Writer) int {
	c := &checkClient{base: "http://" + addr, hc: &http.Client{Timeout: 10 * time.Second}}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "admitd check: "+format+"\n", args...)
		return 1
	}

	// Health and the endpoint index (must name every mounted route family).
	code, v, err := c.do("GET", "/healthz", "")
	if err != nil || code != 200 || v["ok"] != true {
		return fail("/healthz: code %d v %v err %v", code, v, err)
	}
	code, v, err = c.do("GET", "/", "")
	if err != nil || code != 200 {
		return fail("/: code %d err %v", code, err)
	}
	index, _ := v["_raw"].(string)
	for _, want := range []string{"/healthz", "/metrics", "/v1/clusters", "/v1/clusters/{name}/admit"} {
		if !strings.Contains(index, want) {
			return fail("/ index omits %s: %q", want, index)
		}
	}

	// Admission cycle on a single-processor cluster: two half-utilization
	// tasks fill it, a third is an analyzed rejection, removing one admits
	// the third on retry.
	const cluster = "smoke"
	defer c.do("DELETE", "/v1/clusters/"+cluster, "")
	code, v, err = c.do("POST", "/v1/clusters", fmt.Sprintf(`{"name":%q,"m":1}`, cluster))
	if err != nil || code != 201 {
		return fail("create: code %d v %v err %v", code, v, err)
	}
	admit := func(body string) (map[string]any, error) {
		code, v, err := c.do("POST", "/v1/clusters/"+cluster+"/admit", body)
		if err == nil && code != 200 {
			err = fmt.Errorf("code %d: %v", code, v)
		}
		return v, err
	}
	first, err := admit(`{"name":"a","c":5,"t":10}`)
	if err != nil || first["accepted"] != true {
		return fail("admit a: %v err %v", first, err)
	}
	if v, err = admit(`{"name":"b","c":4,"t":10}`); err != nil || v["accepted"] != true {
		return fail("admit b: %v err %v", v, err)
	}
	rej, err := admit(`{"name":"c","c":5,"t":10}`)
	if err != nil || rej["accepted"] == true {
		return fail("overload admit: %v err %v", rej, err)
	}
	if rej["cause"] != "rta-deadline-miss" || rej["evidence"] == nil {
		return fail("rejection untyped: %v", rej)
	}
	handle := int64(first["handle"].(float64))
	code, v, err = c.do("POST", "/v1/clusters/"+cluster+"/remove", fmt.Sprintf(`{"handle":%d}`, handle))
	if err != nil || code != 200 || v["removed"] != true {
		return fail("remove: code %d v %v err %v", code, v, err)
	}
	if v, err = admit(`{"name":"c","c":5,"t":10}`); err != nil || v["accepted"] != true {
		return fail("re-admit after remove: %v err %v", v, err)
	}

	// Load smoke: sustained admit/remove churn against a wider cluster.
	const loadCluster = "smoke-load"
	defer c.do("DELETE", "/v1/clusters/"+loadCluster, "")
	code, v, err = c.do("POST", "/v1/clusters", fmt.Sprintf(`{"name":%q,"m":2}`, loadCluster))
	if err != nil || code != 201 {
		return fail("create load cluster: code %d v %v err %v", code, v, err)
	}
	// Offered load (mean utilization ≈ 0.11 per task, one removal per three
	// admissions) exceeds the two processors in steady state, so the run
	// exercises acceptances, analyzed rejections, and removal churn.
	var handles []int64
	accepted, rejected := 0, 0
	start := time.Now()
	for i := 0; i < load; i++ {
		body := fmt.Sprintf(`{"c":%d,"t":%d}`, 1+i%5, 10+(i%7)*10)
		code, v, err := c.do("POST", "/v1/clusters/"+loadCluster+"/admit", body)
		if err != nil || code != 200 {
			return fail("load admit %d: code %d err %v", i, code, err)
		}
		if v["accepted"] == true {
			accepted++
			handles = append(handles, int64(v["handle"].(float64)))
		} else {
			rejected++
		}
		if len(handles) > 0 && i%3 == 2 {
			h := handles[0]
			handles = handles[1:]
			if code, v, err := c.do("POST", "/v1/clusters/"+loadCluster+"/remove",
				fmt.Sprintf(`{"handle":%d}`, h)); err != nil || code != 200 {
				return fail("load remove: code %d v %v err %v", code, v, err)
			}
		}
	}
	elapsed := time.Since(start)
	if accepted == 0 || rejected == 0 {
		return fail("load smoke not exercising both verdicts: %d accepted, %d rejected", accepted, rejected)
	}
	fmt.Fprintf(stdout, "check ok: %d admissions in %v (%.0f/sec over HTTP), %d accepted, %d rejected\n",
		load, elapsed.Round(time.Millisecond), float64(load)/elapsed.Seconds(), accepted, rejected)
	return 0
}
