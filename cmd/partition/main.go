// Command partition places a task set onto M processors with one of the
// implemented algorithms and prints the verified per-processor assignment.
//
// Usage:
//
//	partition -set tasks.txt -m 4 [-algo rm-ts|rm-ts-light|spa1|spa2|ff|wf|auto] [-pub ll|hc|t|r|best] [-trace [-trace-format text|json]]
//
// The task-set file holds either "name C T" lines or the JSON format of
// internal/taskio. Exit status 1 means the set could not be scheduled.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/taskio"
)

func main() {
	var (
		setPath  = flag.String("set", "", "task set file (text or JSON)")
		m        = flag.Int("m", 2, "number of processors")
		algo     = flag.String("algo", "auto", "algorithm: auto, rm-ts, rm-ts-light, spa1, spa2, ff, wf, edf-ff, edf-ts")
		pubName  = flag.String("pub", "best", "parametric bound for RM-TS: ll, hc, t, r, best")
		quiet    = flag.Bool("q", false, "only print the verdict")
		sens     = flag.Bool("sensitivity", false, "also compute critical scaling factors (global and per task)")
		outPlan  = flag.String("o", "", "write the verified plan as JSON (replayable via simulate -plan)")
		trace    = flag.Bool("trace", false, "print the partitioning decision trace (assign attempts, RTA costs, splits)")
		traceFmt = flag.String("trace-format", "text", "decision-trace format: text or json")
	)
	flag.Parse()
	if *traceFmt != "text" && *traceFmt != "json" {
		fmt.Fprintf(os.Stderr, "partition: -trace-format must be text or json (got %q)\n", *traceFmt)
		os.Exit(2)
	}
	if *setPath == "" {
		fmt.Fprintln(os.Stderr, "partition: -set is required")
		flag.Usage()
		os.Exit(2)
	}
	if *m < 1 {
		fmt.Fprintf(os.Stderr, "partition: -m must be at least 1 (got %d)\n", *m)
		os.Exit(2)
	}
	ts, err := taskio.Load(*setPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(2)
	}

	pub, err := pubByName(*pubName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(2)
	}
	var tr *obs.Trace
	if *trace {
		// Enable the metric counters too: the trace's per-decision RTA
		// iteration deltas read the global iteration counter.
		obs.SetEnabled(true)
		tr = &obs.Trace{}
	}
	alg, err := algoByName(*algo, pub, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(2)
	}

	writeTrace := func() {
		if tr == nil {
			return
		}
		if *traceFmt == "json" {
			if err := tr.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "partition: trace:", err)
				os.Exit(2)
			}
			return
		}
		tr.WriteText(os.Stdout)
	}

	plan, err := core.Partition(ts, *m, core.Options{Algorithm: alg, PUB: pub, Trace: tr})
	if err != nil {
		writeTrace()
		fmt.Fprintf(os.Stderr, "partition: NOT SCHEDULABLE: %v\n", err)
		os.Exit(1)
	}
	a := plan.Analysis
	fmt.Printf("schedulable: %d tasks on %d processors via %s\n", a.N, a.M, plan.AlgorithmName)
	fmt.Printf("U(τ)=%.4f  U_M(τ)=%.4f  max U_i=%.4f  light=%v  harmonic chains K=%d\n",
		a.TotalU, a.NormalizedU, a.MaxU, a.Light, a.HarmonicChains)
	fmt.Printf("bounds: Θ(N)=%.4f  best Λ(τ)=%.4f (%s)  RM-TS cap=%.4f  bound-backed=%v\n",
		a.Theta, a.BestBoundValue, a.BestBound, a.RMTSCap, plan.BoundBacked)
	if plan.Result.NumSplit > 0 || plan.Result.NumPreAssigned > 0 {
		fmt.Printf("split tasks: %d  pre-assigned heavy tasks: %d\n",
			plan.Result.NumSplit, plan.Result.NumPreAssigned)
	}
	if tr != nil {
		fmt.Println()
		writeTrace()
	}
	if !*quiet {
		fmt.Println()
		fmt.Print(plan.Assignment())
	}
	if *sens {
		rep, err := core.Sensitivity(ts, *m, alg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partition: sensitivity:", err)
			os.Exit(2)
		}
		fmt.Println()
		fmt.Print(rep)
	}
	if *outPlan != "" {
		f, err := os.Create(*outPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partition:", err)
			os.Exit(2)
		}
		defer f.Close()
		sched := plan.Result.Scheduler
		if sched == "" {
			sched = "FP"
		}
		if err := taskio.SavePlan(f, plan.Assignment(), sched); err != nil {
			fmt.Fprintln(os.Stderr, "partition:", err)
			os.Exit(2)
		}
		fmt.Printf("plan written to %s\n", *outPlan)
	}
}

func pubByName(name string) (bounds.PUB, error) {
	switch name {
	case "ll":
		return bounds.LiuLayland{}, nil
	case "hc":
		return bounds.HarmonicChain{Minimal: true}, nil
	case "t":
		return bounds.TBound{}, nil
	case "r":
		return bounds.RBound{}, nil
	case "best", "":
		return bounds.Max{Bounds: core.DefaultBounds()}, nil
	default:
		return nil, fmt.Errorf("unknown bound %q (want ll, hc, t, r, best)", name)
	}
}

func algoByName(name string, pub bounds.PUB, tr *obs.Trace) (partition.Algorithm, error) {
	switch name {
	case "auto", "":
		return nil, nil // let the planner decide (core.Options.Trace applies)
	case "rm-ts":
		return &partition.RMTS{PUB: pub, Trace: tr}, nil
	case "rm-ts-light":
		return partition.RMTSLight{Trace: tr}, nil
	case "spa1":
		return partition.SPA1{Trace: tr}, nil
	case "spa2":
		return partition.SPA2{Trace: tr}, nil
	case "ff":
		return partition.FirstFitRTA{Trace: tr}, nil
	case "wf":
		return partition.WorstFitRTA{Trace: tr}, nil
	case "edf-ff":
		return partition.EDFFirstFit{}, nil
	case "edf-ts":
		return partition.EDFTS{Trace: tr}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want auto, rm-ts, rm-ts-light, spa1, spa2, ff, wf, edf-ff, edf-ts)", name)
	}
}
