// Command perfdiff is the perf-regression gate over the machine-readable
// bench records ci.sh emits (BENCH_hotpath.json): it diffs two records
// metric by metric under per-metric growth tolerances, prints an aligned
// table, and exits non-zero when a gated metric regressed — so a hot-path
// slowdown or allocation creep fails CI instead of landing silently.
//
// Usage:
//
//	perfdiff [flags] OLD.json NEW.json
//	perfdiff -validate-events FILE.jsonl
//	perfdiff -validate-prom FILE.txt
//	perfdiff -validate-access-log FILE.jsonl
//
// Tolerances are fractional growth allowances: -allocs-tol 0.10 accepts up
// to +10% allocs/op. Metrics listed in -warn only warn on regression —
// timing (ns/op) is inherently noisy in CI, while allocs/op is
// deterministic and gates hard. Exit status: 0 clean (or warnings only),
// 1 regression, 2 usage error.
//
// The second form validates a JSONL run-event log written by
// `experiments -events` against the strict event schema (see
// internal/obs), so CI can lint the telemetry stream it just produced.
// The third validates a Prometheus text exposition (as served by admitd's
// /metrics or captured by `admitd -scrape`), and the fourth an admitd JSONL
// access log — together they are ci.sh's metrics-lint step.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/perfdiff"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nsTol     = flag.Float64("ns-tol", 0.50, "allowed fractional ns/op growth")
		bytesTol  = flag.Float64("bytes-tol", 0.50, "allowed fractional B/op growth")
		allocsTol = flag.Float64("allocs-tol", 0.10, "allowed fractional allocs/op growth")
		extraTol  = flag.Float64("extra-tol", 0.50, "allowed fractional growth of domain metrics (rta-iters/op, ...)")
		warn      = flag.String("warn", "", "comma-separated metrics that only warn on regression (e.g. 'ns/op,B/op')")
		validate  = flag.String("validate-events", "", "validate a JSONL run-event log instead of diffing bench records")
		valProm   = flag.String("validate-prom", "", "validate a Prometheus text exposition instead of diffing bench records")
		valAccess = flag.String("validate-access-log", "", "validate an admitd JSONL access log instead of diffing bench records")
	)
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "perfdiff: "+format+"\n", args...)
		os.Exit(2)
	}
	for name, v := range map[string]float64{
		"-ns-tol": *nsTol, "-bytes-tol": *bytesTol, "-allocs-tol": *allocsTol, "-extra-tol": *extraTol,
	} {
		if v < 0 {
			fail("%s must be non-negative (got %v)", name, v)
		}
	}

	modes := 0
	for _, m := range []string{*validate, *valProm, *valAccess} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		fail("-validate-events, -validate-prom and -validate-access-log are mutually exclusive")
	}
	if modes == 1 {
		if flag.NArg() != 0 {
			fail("validate modes take no positional arguments (got %d)", flag.NArg())
		}
		path, kind, check := *validate, "event log", func(f *os.File) (int, string, error) {
			n, err := obs.ValidateEventLog(f)
			return n, fmt.Sprintf("%d events, schema v%d", n, obs.EventSchemaVersion), err
		}
		switch {
		case *valProm != "":
			path, kind, check = *valProm, "prometheus exposition", func(f *os.File) (int, string, error) {
				n, err := obs.ValidatePrometheusText(f)
				return n, fmt.Sprintf("%d metric families", n), err
			}
		case *valAccess != "":
			path, kind, check = *valAccess, "access log", func(f *os.File) (int, string, error) {
				n, err := obs.ValidateAccessLog(f)
				return n, fmt.Sprintf("%d records, schema v%d", n, obs.AccessSchemaVersion), err
			}
		}
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		_, summary, err := check(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfdiff: %s: invalid %s: %v\n", path, kind, err)
			return 1
		}
		fmt.Printf("%s: %s, ok\n", path, summary)
		return 0
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "perfdiff: need OLD.json NEW.json (or a -validate-* FILE)")
		flag.Usage()
		os.Exit(2)
	}
	oldF, err := perfdiff.Load(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	newF, err := perfdiff.Load(flag.Arg(1))
	if err != nil {
		fail("%v", err)
	}

	tol := perfdiff.Tolerances{Ns: *nsTol, Bytes: *bytesTol, Allocs: *allocsTol,
		Extra: *extraTol, WarnOnly: map[string]bool{}}
	for _, m := range strings.Split(*warn, ",") {
		if m = strings.TrimSpace(m); m != "" {
			tol.WarnOnly[m] = true
		}
	}

	rep := perfdiff.Diff(oldF, newF, tol)
	rep.Render(os.Stdout)
	if rep.Failed() {
		fmt.Fprintln(os.Stderr, "perfdiff: performance regression detected")
		return 1
	}
	return 0
}
