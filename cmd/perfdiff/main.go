// Command perfdiff is the perf-regression gate over the machine-readable
// bench records ci.sh emits (BENCH_hotpath.json): it diffs two records
// metric by metric under per-metric growth tolerances, prints an aligned
// table, and exits non-zero when a gated metric regressed — so a hot-path
// slowdown or allocation creep fails CI instead of landing silently.
//
// Usage:
//
//	perfdiff [flags] OLD.json NEW.json
//	perfdiff -validate-events FILE.jsonl
//
// Tolerances are fractional growth allowances: -allocs-tol 0.10 accepts up
// to +10% allocs/op. Metrics listed in -warn only warn on regression —
// timing (ns/op) is inherently noisy in CI, while allocs/op is
// deterministic and gates hard. Exit status: 0 clean (or warnings only),
// 1 regression, 2 usage error.
//
// The second form validates a JSONL run-event log written by
// `experiments -events` against the strict event schema (see
// internal/obs), so CI can lint the telemetry stream it just produced.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/perfdiff"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nsTol     = flag.Float64("ns-tol", 0.50, "allowed fractional ns/op growth")
		bytesTol  = flag.Float64("bytes-tol", 0.50, "allowed fractional B/op growth")
		allocsTol = flag.Float64("allocs-tol", 0.10, "allowed fractional allocs/op growth")
		extraTol  = flag.Float64("extra-tol", 0.50, "allowed fractional growth of domain metrics (rta-iters/op, ...)")
		warn      = flag.String("warn", "", "comma-separated metrics that only warn on regression (e.g. 'ns/op,B/op')")
		validate  = flag.String("validate-events", "", "validate a JSONL run-event log instead of diffing bench records")
	)
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "perfdiff: "+format+"\n", args...)
		os.Exit(2)
	}
	for name, v := range map[string]float64{
		"-ns-tol": *nsTol, "-bytes-tol": *bytesTol, "-allocs-tol": *allocsTol, "-extra-tol": *extraTol,
	} {
		if v < 0 {
			fail("%s must be non-negative (got %v)", name, v)
		}
	}

	if *validate != "" {
		if flag.NArg() != 0 {
			fail("-validate-events takes no positional arguments (got %d)", flag.NArg())
		}
		f, err := os.Open(*validate)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		n, err := obs.ValidateEventLog(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfdiff: %s: invalid event log: %v\n", *validate, err)
			return 1
		}
		fmt.Printf("%s: %d events, schema v%d, ok\n", *validate, n, obs.EventSchemaVersion)
		return 0
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "perfdiff: need OLD.json NEW.json (or -validate-events FILE)")
		flag.Usage()
		os.Exit(2)
	}
	oldF, err := perfdiff.Load(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	newF, err := perfdiff.Load(flag.Arg(1))
	if err != nil {
		fail("%v", err)
	}

	tol := perfdiff.Tolerances{Ns: *nsTol, Bytes: *bytesTol, Allocs: *allocsTol,
		Extra: *extraTol, WarnOnly: map[string]bool{}}
	for _, m := range strings.Split(*warn, ",") {
		if m = strings.TrimSpace(m); m != "" {
			tol.WarnOnly[m] = true
		}
	}

	rep := perfdiff.Diff(oldF, newF, tol)
	rep.Render(os.Stdout)
	if rep.Failed() {
		fmt.Fprintln(os.Stderr, "perfdiff: performance regression detected")
		return 1
	}
	return 0
}
