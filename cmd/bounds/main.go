// Command bounds analyzes a task set's parameters and prints every
// implemented parametric utilization bound (§III), the derived RM-TS
// guarantees, and the harmonic chain structure.
//
// Usage:
//
//	bounds -set tasks.txt [-m 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/taskio"
)

func main() {
	var (
		setPath = flag.String("set", "", "task set file (text or JSON)")
		m       = flag.Int("m", 1, "number of processors (for normalized utilization)")
	)
	flag.Parse()
	if *m < 1 {
		fmt.Fprintf(os.Stderr, "bounds: -m must be at least 1 (got %d)\n", *m)
		os.Exit(2)
	}
	if *setPath == "" {
		fmt.Fprintln(os.Stderr, "bounds: -set is required")
		flag.Usage()
		os.Exit(2)
	}
	ts, err := taskio.Load(*setPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bounds:", err)
		os.Exit(2)
	}
	sorted := ts.Clone()
	sorted.SortRM()
	a := core.Analyze(sorted, *m)

	fmt.Printf("tasks: %d   processors: %d\n", a.N, a.M)
	fmt.Printf("U(τ) = %.4f   U_M(τ) = %.4f   max U_i = %.4f\n", a.TotalU, a.NormalizedU, a.MaxU)
	fmt.Printf("light (all U_i ≤ Θ/(1+Θ) = %.4f): %v\n", a.LightThreshold, a.Light)
	fmt.Printf("harmonic: %v   minimum harmonic chain cover K = %d\n\n", a.Harmonic, a.HarmonicChains)

	fmt.Println("parametric utilization bounds Λ(τ):")
	for _, b := range core.DefaultBounds() {
		fmt.Printf("  %-8s  %7.4f  (%.1f%%)\n", b.Name(), b.Value(sorted), 100*b.Value(sorted))
	}
	fmt.Println()
	fmt.Printf("Θ(N)            = %.4f\n", a.Theta)
	fmt.Printf("RM-TS/light guarantee (light sets, Theorem 8) = %.4f\n", a.GuaranteeLight)
	fmt.Printf("RM-TS guarantee (any set, §V)                 = %.4f (cap 2Θ/(1+Θ) = %.4f)\n", a.GuaranteeAny, a.RMTSCap)

	chains, periods := bounds.HarmonicChainCover(bounds.Periods(sorted))
	fmt.Println("\nharmonic chain cover (periods):")
	for i, ch := range chains {
		fmt.Printf("  chain %d:", i+1)
		for _, idx := range ch {
			fmt.Printf(" %d", periods[idx])
		}
		fmt.Println()
	}

	ok, bound, _ := core.BoundTest(sorted, *m)
	fmt.Printf("\nbound-only admission at M=%d: U_M=%.4f vs bound %.4f → %v\n", a.M, a.NormalizedU, bound, verdict(ok))
}

func verdict(ok bool) string {
	if ok {
		return "SCHEDULABLE (by bound)"
	}
	return "not provable by bound alone (try cmd/partition for exact RTA packing)"
}
