// Command acceptance runs a configurable acceptance-ratio sweep — the
// workhorse plot of the paper's evaluation — and writes one row per
// normalized-utilization point with the acceptance ratio of each selected
// algorithm.
//
// Usage:
//
//	acceptance [-m 8] [-sets 500] [-from 0.6] [-to 1.0] [-step 0.025]
//	           [-umin 0.05] [-umax 0.95] [-class general|light|harmonic|kchains]
//	           [-k 2] [-seed 1] [-csv]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/bounds"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/task"
)

func main() {
	var (
		m     = flag.Int("m", 8, "number of processors")
		sets  = flag.Int("sets", 500, "task sets per sweep point")
		from  = flag.Float64("from", 0.60, "sweep start U_M")
		to    = flag.Float64("to", 1.00, "sweep end U_M")
		step  = flag.Float64("step", 0.025, "sweep step")
		umin  = flag.Float64("umin", 0.05, "per-task minimum utilization")
		umax  = flag.Float64("umax", 0.95, "per-task maximum utilization")
		class = flag.String("class", "general", "task-set class: general, light, harmonic, kchains")
		k     = flag.Int("k", 2, "harmonic chain count for -class kchains")
		seed  = flag.Int64("seed", 1, "random seed")
		csv   = flag.Bool("csv", false, "CSV output")
		algos = flag.String("algos", "rm-ts,rm-ts-light,spa1,spa2,ff", "comma-separated algorithms")
	)
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "acceptance: "+format+"\n", args...)
		os.Exit(2)
	}
	if *m < 1 {
		fail("-m must be at least 1 (got %d)", *m)
	}
	if *sets < 1 {
		fail("-sets must be positive (got %d)", *sets)
	}
	if *step <= 0 {
		fail("-step must be positive (got %g)", *step)
	}
	if *from > *to {
		fail("need -from ≤ -to (got from=%g to=%g)", *from, *to)
	}
	if *umin <= 0 || *umax > 1 || *umin > *umax {
		fail("need 0 < -umin ≤ -umax ≤ 1 (got umin=%g umax=%g)", *umin, *umax)
	}
	if *k < 1 {
		fail("-k must be at least 1 (got %d)", *k)
	}
	switch *class {
	case "general", "light", "harmonic", "kchains":
	default:
		fail("unknown class %q (want general, light, harmonic, or kchains)", *class)
	}

	specs, err := parseAlgos(*algos)
	if err != nil {
		fail("%v", err)
	}

	genSet := func(r *rand.Rand, target float64) (task.Set, error) {
		switch *class {
		case "general":
			return gen.TaskSet(r, gen.Config{TargetU: target, UMin: *umin, UMax: *umax})
		case "light":
			hi := *umax
			if hi > 0.40 {
				hi = 0.40
			}
			return gen.TaskSet(r, gen.Config{TargetU: target, UMin: *umin, UMax: hi})
		case "harmonic":
			return gen.HarmonicSet(r, gen.HarmonicConfig{TargetU: target, UMin: *umin, UMax: minf(*umax, 0.40), Chains: 1})
		case "kchains":
			return gen.HarmonicSet(r, gen.HarmonicConfig{TargetU: target, UMin: *umin, UMax: minf(*umax, 0.40), Chains: *k})
		default:
			return nil, fmt.Errorf("unknown class %q", *class)
		}
	}

	r := rand.New(rand.NewSource(*seed))
	sep := "  "
	if *csv {
		sep = ","
	}
	header := []string{"U_M"}
	for _, s := range specs {
		header = append(header, s.name, s.name+"_lo", s.name+"_hi")
	}
	fmt.Println(strings.Join(header, sep))
	for um := *from; um <= *to+1e-9; um += *step {
		target := um * float64(*m)
		accepted := make([]int, len(specs))
		for i := 0; i < *sets; i++ {
			ts, err := genSet(r, target)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acceptance:", err)
				os.Exit(2)
			}
			for j, s := range specs {
				res := s.alg.Partition(ts, *m)
				if res.OK && res.Guaranteed {
					accepted[j]++
				}
			}
		}
		row := []string{fmt.Sprintf("%.3f", um)}
		for _, kAcc := range accepted {
			lo, hi := stats.Wilson(kAcc, *sets, 1.96)
			row = append(row,
				fmt.Sprintf("%.4f", float64(kAcc)/float64(*sets)),
				fmt.Sprintf("%.4f", lo),
				fmt.Sprintf("%.4f", hi))
		}
		fmt.Println(strings.Join(row, sep))
	}
}

type spec struct {
	name string
	alg  partition.Algorithm
}

func parseAlgos(list string) ([]spec, error) {
	var out []spec
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "rm-ts":
			out = append(out, spec{"rm-ts", partition.NewRMTS(bounds.Max{Bounds: []bounds.PUB{
				bounds.LiuLayland{}, bounds.HarmonicChain{Minimal: true}, bounds.TBound{}, bounds.RBound{},
			}})})
		case "rm-ts-light":
			out = append(out, spec{"rm-ts-light", partition.RMTSLight{}})
		case "spa1":
			out = append(out, spec{"spa1", partition.SPA1{}})
		case "spa2":
			out = append(out, spec{"spa2", partition.SPA2{}})
		case "ff":
			out = append(out, spec{"ff", partition.FirstFitRTA{}})
		case "wf":
			out = append(out, spec{"wf", partition.WorstFitRTA{}})
		case "":
		default:
			return nil, fmt.Errorf("unknown algorithm %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no algorithms selected")
	}
	return out, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
