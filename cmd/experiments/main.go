// Command experiments regenerates the paper's evaluation tables (see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured records).
//
// Usage:
//
//	experiments -list
//	experiments -run acceptance-general [-sets 500] [-seed 1] [-quick] [-csv]
//	experiments -all [-sets 200]
//
// Observability flags: -progress decorates the per-point progress lines on
// stderr with counts, elapsed time and an ETA; -metrics prints a
// per-experiment counter snapshot (RTA iterations, splits, ...) after the
// tables; -cpuprofile/-memprofile write pprof profiles. None of them alter
// the table output — it stays bit-for-bit identical for a given seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/rta"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "", "experiment key to run")
		all        = flag.Bool("all", false, "run every experiment")
		sets       = flag.Int("sets", 200, "task sets per sweep point")
		seed       = flag.Int64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "reduced sweeps (benchmark scale)")
		csv        = flag.Bool("csv", false, "CSV output instead of aligned tables")
		quiet      = flag.Bool("q", false, "suppress progress output")
		workers    = flag.Int("workers", 0, "concurrent workers for set evaluation (0 = GOMAXPROCS; results are identical at any count)")
		progress   = flag.Bool("progress", false, "decorate progress lines with point counts, elapsed time and an ETA (stderr)")
		metrics    = flag.Bool("metrics", false, "print per-experiment analysis-cost counters after the tables")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		rtacache   = flag.Bool("rtacache", true, "warm-start RTA caching in the partitioners (tables are identical either way; disable to cross-check or to measure the saving)")
		reuse      = flag.Bool("reuse", true, "per-worker scratch reuse (generation buffers, partitioning arenas, RNGs); tables are identical either way; disable to cross-check or to measure the allocation saving")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %s\n", e.Key, e.Title)
		}
		return
	}
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		os.Exit(2)
	}
	if *workers < 0 {
		fail("-workers must be non-negative (got %d)", *workers)
	}
	if *sets <= 0 {
		fail("-sets must be positive (got %d)", *sets)
	}
	if *run != "" && *all {
		fail("-run and -all are mutually exclusive")
	}
	if *progress && *quiet {
		fail("-progress and -q are mutually exclusive")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{Seed: *seed, SetsPerPoint: *sets, Quick: *quick,
		Workers: *workers, ProgressETA: *progress, NoReuse: !*reuse}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.Registry()
	case *run != "":
		e, ok := experiments.Find(*run)
		if !ok {
			msg := fmt.Sprintf("unknown key %q (use -list)", *run)
			if sug := experiments.SuggestKeys(*run); len(sug) > 0 {
				msg += "; did you mean " + strings.Join(sug, ", ") + "?"
			}
			fail("%s", msg)
		}
		toRun = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -run <key>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	if *metrics {
		obs.SetEnabled(true)
	}
	rta.SetWarmStart(*rtacache)
	for _, e := range toRun {
		tables, rm, err := experiments.RunWithMetrics(e, cfg)
		if err != nil {
			fail("%s: %v", e.Key, err)
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s — %s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			} else {
				t.Render(os.Stdout)
			}
		}
		if *metrics {
			rm.Render(os.Stdout)
			fmt.Println()
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("memprofile: %v", err)
		}
	}
}
