// Command experiments regenerates the paper's evaluation tables (see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured records).
//
// Usage:
//
//	experiments -list
//	experiments -run acceptance-general [-sets 500] [-seed 1] [-quick] [-csv]
//	experiments -all [-sets 200]
//
// Observability flags: -progress decorates the per-point progress lines on
// stderr with counts, elapsed time and an ETA; -metrics prints a
// per-experiment counter snapshot (RTA iterations, splits, ...) to stderr
// after the tables (stdout carries only tables/CSV, so machine parsing is
// never disturbed); -metrics-json writes the same snapshots as a
// schema-versioned JSON document; -events appends a JSONL flight-recorder
// stream (run/experiment/point lifecycle, per-point counter deltas, sample
// errors with repro seeds, checkpoint writes); -listen serves live
// /metrics, /progress and /debug/pprof endpoints while the run executes;
// -cpuprofile/-memprofile write pprof profiles. None of them alter the
// table output — it stays bit-for-bit identical for a given seed
// (DESIGN.md §10).
//
// Robustness flags (DESIGN.md §9): -timeout bounds the whole run; SIGINT or
// SIGTERM cancels it gracefully — in both cases workers drain, completed
// sweep rows are still printed, and the exit status is non-zero.
// -checkpoint persists each completed sweep point atomically; -resume
// restores them, making an interrupted+resumed run render byte-identical
// output to an uninterrupted one. -paranoid re-validates every successful
// partitioning against the full invariant set; a violation aborts only that
// sample and is reported with a deterministic replay recipe.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rta"
)

func main() {
	os.Exit(run())
}

// metricsDoc is the -metrics-json document: one schema-versioned file with
// an entry per executed experiment. Counters/histograms are deterministic
// for a fixed seed; seconds and spans are wall-clock.
type metricsDoc struct {
	Schema int               `json:"schema"`
	Runs   []runMetricsEntry `json:"runs"`
}

type runMetricsEntry struct {
	Key        string                `json:"key"`
	Seconds    float64               `json:"seconds"`
	Counters   []obs.CounterValue    `json:"counters"`
	Histograms []obs.HistogramExport `json:"histograms,omitempty"`
	Spans      []obs.SpanValue       `json:"spans,omitempty"`
}

func run() int {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "", "experiment key to run")
		all        = flag.Bool("all", false, "run every experiment")
		sets       = flag.Int("sets", 200, "task sets per sweep point")
		seed       = flag.Int64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "reduced sweeps (benchmark scale)")
		csv        = flag.Bool("csv", false, "CSV output instead of aligned tables")
		quiet      = flag.Bool("q", false, "suppress progress output")
		workers    = flag.Int("workers", 0, "concurrent workers for set evaluation (0 = GOMAXPROCS; results are identical at any count)")
		progress   = flag.Bool("progress", false, "decorate progress lines with point counts, elapsed time and an ETA (stderr)")
		metrics    = flag.Bool("metrics", false, "print per-experiment analysis-cost counters to stderr after the tables")
		metricsOut = flag.String("metrics-json", "", "write per-experiment metric snapshots (schema-versioned JSON) to this file")
		events     = flag.String("events", "", "write a JSONL run-event stream (experiment/point lifecycle, sample errors, checkpoints) to this file")
		listen     = flag.String("listen", "", "serve live status at this address (host:port): /metrics, /progress, /debug/pprof/")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		rtacache   = flag.Bool("rtacache", true, "warm-start RTA caching in the partitioners (tables are identical either way; disable to cross-check or to measure the saving)")
		prefilter  = flag.Bool("prefilter", true, "sufficient utilization-bound admission prefilter (tables are identical either way; disable to cross-check or to measure the skipped RTA work)")
		crossscale = flag.Bool("crossscale", true, "cross-scale verdict and response reuse in the breakdown bisections (tables are identical either way; disable to cross-check or to measure the saving)")
		reuse      = flag.Bool("reuse", true, "per-worker scratch reuse (generation buffers, partitioning arenas, RNGs); tables are identical either way; disable to cross-check or to measure the allocation saving")
		timeout    = flag.Duration("timeout", 0, "overall wall-clock deadline for the run (0 = none); on expiry workers drain and completed sweep rows are still printed")
		checkpoint = flag.String("checkpoint", "", "write completed sweep points to this file (atomic temp+rename after every point)")
		resume     = flag.Bool("resume", false, "restore completed points from the -checkpoint file before running; restored output is byte-identical to an uninterrupted run")
		paranoid   = flag.Bool("paranoid", false, "re-validate every successful partitioning against the full invariant set (slower); a violation aborts that sample with a seed-reproducible report")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %s\n", e.Key, e.Title)
		}
		return 0
	}
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		os.Exit(2)
	}
	if *workers < 0 {
		fail("-workers must be non-negative (got %d)", *workers)
	}
	if *sets <= 0 {
		fail("-sets must be positive (got %d)", *sets)
	}
	if *run != "" && *all {
		fail("-run and -all are mutually exclusive")
	}
	if *progress && *quiet {
		fail("-progress and -q are mutually exclusive")
	}
	if *timeout < 0 {
		fail("-timeout must be non-negative (got %v)", *timeout)
	}
	if *resume && *checkpoint == "" {
		fail("-resume requires -checkpoint <file>")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{Seed: *seed, SetsPerPoint: *sets, Quick: *quick,
		Workers: *workers, ProgressETA: *progress, NoReuse: !*reuse, Paranoid: *paranoid,
		NoCrossScale: !*crossscale}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	// Cancellation: an optional overall deadline, and SIGINT/SIGTERM for
	// interactive/orchestrated interruption. Both cancel the same context;
	// sweeps drain their workers and hand back the rows completed so far.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg = cfg.WithContext(ctx)

	if *checkpoint != "" {
		if *resume {
			cp, err := experiments.ResumeCheckpoint(*checkpoint, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
			if !*quiet && cp.Points() > 0 {
				fmt.Fprintf(os.Stderr, "experiments: resuming %d completed points from %s\n", cp.Points(), *checkpoint)
			}
			cfg.Checkpoint = cp
		} else {
			cfg.Checkpoint = experiments.NewCheckpoint(*checkpoint, cfg)
		}
	}

	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.Registry()
	case *run != "":
		e, ok := experiments.Find(*run)
		if !ok {
			msg := fmt.Sprintf("unknown key %q (use -list)", *run)
			if sug := experiments.SuggestKeys(*run); len(sug) > 0 {
				msg += "; did you mean " + strings.Join(sug, ", ") + "?"
			}
			fail("%s", msg)
		}
		toRun = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -run <key>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	// Any export surface needs the counters collected; enabling them never
	// alters experiment output (the golden tests pin this).
	if *metrics || *metricsOut != "" || *events != "" || *listen != "" {
		obs.SetEnabled(true)
	}
	rta.SetWarmStart(*rtacache)
	partition.SetPrefilter(*prefilter)

	var rec *obs.Recorder
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fail("events: %v", err)
		}
		rec = obs.NewRecorder(f)
		rec.Emit(obs.RunEvent{Kind: obs.EvRunStart, Schema: obs.EventSchemaVersion,
			GoVersion: runtime.Version(), Seed: *seed, Sets: *sets, Quick: *quick,
			Workers: *workers})
		cfg.Events = rec
	}
	var metricsFile *os.File
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail("metrics-json: %v", err)
		}
		metricsFile = f
	}
	if *listen != "" {
		srv, err := obs.Serve(*listen, obs.Default)
		if err != nil {
			fail("%v", err)
		}
		defer srv.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "experiments: status on http://%s (/metrics /progress /debug/pprof/)\n", srv.Addr())
		}
	}

	exit := 0
	var metricRuns []runMetricsEntry
	for _, e := range toRun {
		tables, rm, err := experiments.RunWithMetrics(e, cfg)
		// Render whatever completed — on cancellation or a sample failure
		// the experiment returns the rows finished before the interruption.
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s — %s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			} else {
				t.Render(os.Stdout)
			}
		}
		// The metrics report goes to stderr: stdout carries only tables
		// (aligned or CSV), so piping -csv output into a parser stays safe.
		if *metrics {
			rm.Render(os.Stderr)
			fmt.Fprintln(os.Stderr)
		}
		if metricsFile != nil {
			metricRuns = append(metricRuns, runMetricsEntry{
				Key:        rm.Key,
				Seconds:    rm.Seconds,
				Counters:   rm.Counters,
				Histograms: obs.ExportHistograms(rm.Histograms),
				Spans:      rm.Spans,
			})
		}
		if err != nil {
			exit = 1
			var se *experiments.SampleError
			if errors.As(err, &se) {
				fmt.Fprintf(os.Stderr, "experiments: %v\n%s\n", err, se.Repro())
			} else {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
			if ctx.Err() != nil {
				// Cancelled or timed out: later experiments would return
				// immediately and emptily — stop here.
				break
			}
		}
	}

	if rec != nil {
		rec.Emit(obs.RunEvent{Kind: obs.EvRunEnd})
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: events: %v\n", err)
			return 1
		}
	}
	if metricsFile != nil {
		enc := json.NewEncoder(metricsFile)
		enc.SetIndent("", "  ")
		err := enc.Encode(metricsDoc{Schema: obs.SnapshotSchemaVersion, Runs: metricRuns})
		if cerr := metricsFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics-json: %v\n", err)
			return 1
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			return 1
		}
	}
	return exit
}
