// Command experiments regenerates the paper's evaluation tables (see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured records).
//
// Usage:
//
//	experiments -list
//	experiments -run acceptance-general [-sets 500] [-seed 1] [-quick] [-csv]
//	experiments -all [-sets 200]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "", "experiment key to run")
		all     = flag.Bool("all", false, "run every experiment")
		sets    = flag.Int("sets", 200, "task sets per sweep point")
		seed    = flag.Int64("seed", 1, "random seed")
		quick   = flag.Bool("quick", false, "reduced sweeps (benchmark scale)")
		csv     = flag.Bool("csv", false, "CSV output instead of aligned tables")
		quiet   = flag.Bool("q", false, "suppress progress output")
		workers = flag.Int("workers", 0, "concurrent workers for set evaluation (0 = GOMAXPROCS; results are identical at any count)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %s\n", e.Key, e.Title)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, SetsPerPoint: *sets, Quick: *quick, Workers: *workers}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.Registry()
	case *run != "":
		e, ok := experiments.Find(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown key %q (use -list)\n", *run)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -run <key>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, e := range toRun {
		for _, t := range e.Run(cfg) {
			if *csv {
				fmt.Printf("# %s — %s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			} else {
				t.Render(os.Stdout)
			}
		}
	}
}
