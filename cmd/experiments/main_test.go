package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
)

// buildExperiments compiles the command under test into dir and returns the
// binary path.
func buildExperiments(t *testing.T, dir string) string {
	t.Helper()
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	bin := filepath.Join(dir, "experiments-under-test")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// TestSigintKillAndResume is the process-level kill-and-resume contract:
// build the binary, interrupt a checkpointed run with SIGINT after its
// first completed sweep point, then resume and require stdout to be
// byte-identical to an uninterrupted reference run.
func TestSigintKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildExperiments(t, dir)

	args := []string{"-run", "acceptance-general", "-sets", "800", "-seed", "7"}
	ref, err := exec.Command(bin, append(append([]string{}, args...), "-q")...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cp := filepath.Join(dir, "cp.json")
	cmd := exec.Command(bin, append(append([]string{}, args...), "-checkpoint", cp)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Without -q the progress meter prints one stderr line per completed
	// point. The first point's checkpoint store completes before the second
	// point's progress line can appear, so interrupting after two lines
	// guarantees the checkpoint holds at least one point. If the run
	// finishes before the signal lands the resume below is a full restore —
	// the byte-identity requirement is the same either way.
	sc := bufio.NewScanner(stderr)
	if sc.Scan() && sc.Scan() {
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatalf("signal: %v", err)
		}
	}
	_, _ = io.Copy(io.Discard, stderr)
	if err := cmd.Wait(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("interrupted run: %v", err)
		}
		// Exit 1 with the completed rows printed is the graceful-interrupt
		// contract; anything unprintable (signal death) is a crash.
		if !cmd.ProcessState.Exited() {
			t.Fatalf("process died of the signal instead of draining: %v", cmd.ProcessState)
		}
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("no checkpoint file after interrupt: %v", err)
	}

	resumed, err := exec.Command(bin, append(append([]string{}, args...), "-checkpoint", cp, "-resume", "-q")...).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(resumed, ref) {
		t.Fatalf("resumed stdout differs from uninterrupted run\n--- reference\n%s--- resumed\n%s", ref, resumed)
	}
}

// TestCSVStdoutPure is the regression test for the -csv -metrics stream
// corruption: stdout must carry only table data — `# <id> — <title>` table
// headers, CSV rows with a constant field count, and blank separators —
// with the metrics report routed to stderr.
func TestCSVStdoutPure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	bin := buildExperiments(t, t.TempDir())
	cmd := exec.Command(bin, "-run", "acceptance-general", "-quick", "-sets", "8", "-seed", "3", "-csv", "-metrics", "-q")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "# metrics acceptance-general") {
		t.Errorf("metrics report missing from stderr:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "# metrics") {
		t.Errorf("metrics report leaked into stdout:\n%s", stdout.String())
	}
	fields := -1
	for i, line := range strings.Split(stdout.String(), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# "):
			if !strings.Contains(line, "—") {
				t.Errorf("stdout line %d: unexpected comment %q", i+1, line)
			}
		default:
			n := strings.Count(line, ",")
			if fields == -1 {
				fields = n
			}
			if n != fields || n == 0 {
				t.Errorf("stdout line %d: %d commas, want %d: %q", i+1, n, fields, line)
			}
		}
	}
	if fields == -1 {
		t.Fatalf("no CSV rows on stdout:\n%s", stdout.String())
	}
}

// TestExportDoesNotAlterTables is the determinism acceptance gate for the
// telemetry exports: stdout with -events, -metrics-json and -listen all
// enabled must be byte-identical to a plain run, and the artifacts written
// on the side must be valid (the event log passes strict schema
// validation).
func TestExportDoesNotAlterTables(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildExperiments(t, dir)
	args := []string{"-run", "acceptance-general", "-quick", "-sets", "16", "-seed", "7", "-q"}
	ref, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	evPath := filepath.Join(dir, "events.jsonl")
	mPath := filepath.Join(dir, "metrics.json")
	exported, err := exec.Command(bin, append(append([]string{}, args...),
		"-events", evPath, "-metrics-json", mPath, "-listen", "127.0.0.1:0")...).Output()
	if err != nil {
		t.Fatalf("exporting run: %v", err)
	}
	if !bytes.Equal(exported, ref) {
		t.Fatalf("stdout changed with exports enabled\n--- reference\n%s--- exported\n%s", ref, exported)
	}

	ev, err := os.Open(evPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	n, err := obs.ValidateEventLog(ev)
	if err != nil {
		t.Fatalf("event log invalid: %v", err)
	}
	if n < 7 { // run-start + experiment-start + 4 points + experiment-end + run-end
		t.Errorf("event log suspiciously short: %d events", n)
	}

	data, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema int `json:"schema"`
		Runs   []struct {
			Key      string             `json:"key"`
			Counters []obs.CounterValue `json:"counters"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics-json: %v\n%s", err, data)
	}
	if doc.Schema != obs.SnapshotSchemaVersion || len(doc.Runs) != 1 ||
		doc.Runs[0].Key != "acceptance-general" ||
		(obs.Snapshot{Counters: doc.Runs[0].Counters}).Get("rta.calls") == 0 {
		t.Fatalf("metrics-json content wrong:\n%s", data)
	}
}

// TestFlagValidationExit2 checks the usage-error convention for the new
// flags: unusable -events/-metrics-json paths and an unbindable -listen
// address exit 2 before any experiment work runs.
func TestFlagValidationExit2(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	bin := buildExperiments(t, t.TempDir())
	base := []string{"-run", "acceptance-general", "-quick", "-sets", "4", "-q"}
	for name, extra := range map[string][]string{
		"events dir":        {"-events", "/nonexistent-dir/ev.jsonl"},
		"metrics-json dir":  {"-metrics-json", "/nonexistent-dir/m.json"},
		"listen unbindable": {"-listen", "256.256.256.256:1"},
	} {
		cmd := exec.Command(bin, append(append([]string{}, base...), extra...)...)
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%s: err=%v (want exit 2)\n%s", name, err, out)
		}
	}
}
