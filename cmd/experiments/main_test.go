package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestSigintKillAndResume is the process-level kill-and-resume contract:
// build the binary, interrupt a checkpointed run with SIGINT after its
// first completed sweep point, then resume and require stdout to be
// byte-identical to an uninterrupted reference run.
func TestSigintKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the binary")
	}
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments-under-test")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	args := []string{"-run", "acceptance-general", "-sets", "800", "-seed", "7"}
	ref, err := exec.Command(bin, append(append([]string{}, args...), "-q")...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cp := filepath.Join(dir, "cp.json")
	cmd := exec.Command(bin, append(append([]string{}, args...), "-checkpoint", cp)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Without -q the progress meter prints one stderr line per completed
	// point. The first point's checkpoint store completes before the second
	// point's progress line can appear, so interrupting after two lines
	// guarantees the checkpoint holds at least one point. If the run
	// finishes before the signal lands the resume below is a full restore —
	// the byte-identity requirement is the same either way.
	sc := bufio.NewScanner(stderr)
	if sc.Scan() && sc.Scan() {
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatalf("signal: %v", err)
		}
	}
	_, _ = io.Copy(io.Discard, stderr)
	if err := cmd.Wait(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("interrupted run: %v", err)
		}
		// Exit 1 with the completed rows printed is the graceful-interrupt
		// contract; anything unprintable (signal death) is a crash.
		if !cmd.ProcessState.Exited() {
			t.Fatalf("process died of the signal instead of draining: %v", cmd.ProcessState)
		}
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("no checkpoint file after interrupt: %v", err)
	}

	resumed, err := exec.Command(bin, append(append([]string{}, args...), "-checkpoint", cp, "-resume", "-q")...).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(resumed, ref) {
		t.Fatalf("resumed stdout differs from uninterrupted run\n--- reference\n%s--- resumed\n%s", ref, resumed)
	}
}
